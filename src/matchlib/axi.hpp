// MatchLib AXI components: master/slave interfaces & bridges for AXI
// interconnect (paper Table 2).
//
// A reduced AXI4 modeled with the five independent channels (AW, W, B, AR,
// R) carried over LI channels — the paper's point that "LI design is widely
// used in ... interconnect protocols such as AXI". Bursts are INCR-only,
// word (64-bit) beats.
//
// Components:
//  * AxiMasterPort  — port bundle + blocking transaction helpers callable
//    from any thread process (read/write, single or burst).
//  * AxiLink        — the five channels wiring one master to one slave.
//  * AxiMemSlave    — slave bridge onto a MemArray<uint64> (SRAM model).
//  * AxiSlavePortal — slave bridge onto user callbacks (CSRs, devices).
//  * AxiBus         — single-master N-slave interconnect with address
//    decode, standing in for the prototype SoC's AXI bus (Fig. 5).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "connections/connections.hpp"
#include "matchlib/mem_array.hpp"

namespace craft::matchlib::axi {

struct AW {
  std::uint32_t addr = 0;  ///< byte address, 8-byte aligned
  std::uint8_t len = 0;    ///< beats - 1 (AXI encoding)
  std::uint8_t id = 0;
  bool operator==(const AW&) const = default;
};

struct W {
  std::uint64_t data = 0;
  bool last = false;
  bool operator==(const W&) const = default;
};

struct B {
  std::uint8_t id = 0;
  std::uint8_t resp = 0;  ///< 0 = OKAY, 2 = SLVERR
  bool operator==(const B&) const = default;
};

struct AR {
  std::uint32_t addr = 0;
  std::uint8_t len = 0;
  std::uint8_t id = 0;
  bool operator==(const AR&) const = default;
};

struct R {
  std::uint64_t data = 0;
  std::uint8_t id = 0;
  std::uint8_t resp = 0;
  bool last = false;
  bool operator==(const R&) const = default;
};

inline constexpr std::uint8_t kRespOkay = 0;
inline constexpr std::uint8_t kRespSlvErr = 2;

/// The five channels joining one master to one slave.
class AxiLink : public Module {
 public:
  AxiLink(Module& parent, const std::string& name, Clock& clk, unsigned depth = 2)
      : Module(parent, name),
        aw(*this, "aw", clk, depth),
        w(*this, "w", clk, depth),
        b(*this, "b", clk, depth),
        ar(*this, "ar", clk, depth),
        r(*this, "r", clk, depth) {}

  connections::Buffer<AW> aw;
  connections::Buffer<W> w;
  connections::Buffer<B> b;
  connections::Buffer<AR> ar;
  connections::Buffer<R> r;
};

/// Master-side port bundle with blocking helpers (call from a thread).
class AxiMasterPort {
 public:
  connections::Out<AW> aw;
  connections::Out<W> w;
  connections::In<B> b;
  connections::Out<AR> ar;
  connections::In<R> r;

  void BindLink(AxiLink& link) {
    aw(link.aw);
    w(link.w);
    b(link.b);
    ar(link.ar);
    r(link.r);
  }

  /// Single-beat read at byte address `addr`.
  std::uint64_t Read(std::uint32_t addr) {
    AR a;
    a.addr = addr;
    a.len = 0;
    ar.Push(a);
    const R resp = r.Pop();
    CRAFT_ASSERT(resp.resp == kRespOkay, "AXI read error @0x" << std::hex << addr);
    return resp.data;
  }

  /// INCR burst read of `n` beats.
  std::vector<std::uint64_t> ReadBurst(std::uint32_t addr, unsigned n) {
    CRAFT_ASSERT(n >= 1 && n <= 256, "AXI burst length 1..256");
    AR a;
    a.addr = addr;
    a.len = static_cast<std::uint8_t>(n - 1);
    ar.Push(a);
    std::vector<std::uint64_t> data;
    data.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      const R resp = r.Pop();
      CRAFT_ASSERT(resp.resp == kRespOkay, "AXI read error @0x" << std::hex << addr);
      data.push_back(resp.data);
      if (i + 1 == n) CRAFT_ASSERT(resp.last, "AXI R.last missing");
    }
    return data;
  }

  /// Single-beat write.
  void Write(std::uint32_t addr, std::uint64_t data) {
    AW a;
    a.addr = addr;
    a.len = 0;
    aw.Push(a);
    W beat;
    beat.data = data;
    beat.last = true;
    w.Push(beat);
    const B resp = b.Pop();
    CRAFT_ASSERT(resp.resp == kRespOkay, "AXI write error @0x" << std::hex << addr);
  }

  /// INCR burst write.
  void WriteBurst(std::uint32_t addr, const std::vector<std::uint64_t>& data) {
    CRAFT_ASSERT(!data.empty() && data.size() <= 256, "AXI burst length 1..256");
    AW a;
    a.addr = addr;
    a.len = static_cast<std::uint8_t>(data.size() - 1);
    aw.Push(a);
    for (std::size_t i = 0; i < data.size(); ++i) {
      W beat;
      beat.data = data[i];
      beat.last = (i + 1 == data.size());
      w.Push(beat);
    }
    const B resp = b.Pop();
    CRAFT_ASSERT(resp.resp == kRespOkay, "AXI write error @0x" << std::hex << addr);
  }
};

/// Slave-side port bundle.
struct AxiSlavePort {
  connections::In<AW> aw;
  connections::In<W> w;
  connections::Out<B> b;
  connections::In<AR> ar;
  connections::Out<R> r;

  void BindLink(AxiLink& link) {
    aw(link.aw);
    w(link.w);
    b(link.b);
    ar(link.ar);
    r(link.r);
  }
};

/// AXI slave bridging to arbitrary read/write callbacks (CSR blocks,
/// device registers). Callbacks take/return 64-bit words at byte addresses.
class AxiSlavePortal : public Module {
 public:
  using ReadFn = std::function<std::uint64_t(std::uint32_t)>;
  using WriteFn = std::function<void(std::uint32_t, std::uint64_t)>;

  AxiSlavePort port;

  AxiSlavePortal(Module& parent, const std::string& name, Clock& clk, ReadFn rd, WriteFn wr)
      : Module(parent, name), read_fn_(std::move(rd)), write_fn_(std::move(wr)) {
    Thread("write_ch", clk, [this] { RunWrites(); });
    Thread("read_ch", clk, [this] { RunReads(); });
  }

 private:
  void RunWrites() {
    for (;;) {
      const AW a = port.aw.Pop();
      for (unsigned beat = 0; beat <= a.len; ++beat) {
        const W d = port.w.Pop();
        write_fn_(a.addr + 8 * beat, d.data);
        if (beat == a.len) CRAFT_ASSERT(d.last, "AXI W.last missing");
      }
      B resp;
      resp.id = a.id;
      resp.resp = kRespOkay;
      port.b.Push(resp);
    }
  }

  void RunReads() {
    for (;;) {
      const AR a = port.ar.Pop();
      for (unsigned beat = 0; beat <= a.len; ++beat) {
        R resp;
        resp.data = read_fn_(a.addr + 8 * beat);
        resp.id = a.id;
        resp.resp = kRespOkay;
        resp.last = (beat == a.len);
        port.r.Push(resp);
      }
    }
  }

  ReadFn read_fn_;
  WriteFn write_fn_;
};

/// AXI slave bridging to a MemArray<uint64> (word-indexed SRAM model).
class AxiMemSlave : public Module {
 public:
  AxiMemSlave(Module& parent, const std::string& name, Clock& clk,
              MemArray<std::uint64_t>& mem)
      : Module(parent, name),
        portal_(*this, "portal", clk,
                [&mem](std::uint32_t addr) { return mem.Read(addr / 8); },
                [&mem](std::uint32_t addr, std::uint64_t v) { mem.Write(addr / 8, v); }) {}

  void BindLink(AxiLink& link) { portal_.port.BindLink(link); }

 private:
  AxiSlavePortal portal_;
};

/// Address range decoded by the bus.
struct AddressRange {
  std::uint32_t base = 0;
  std::uint32_t size = 0;
  bool Contains(std::uint32_t addr) const { return addr >= base && addr - base < size; }
};

/// Single-master, N-slave AXI interconnect with address decode. The master
/// binds to upstream(); each slave region is added with AddSlave, which
/// returns the AxiLink the slave must bind to. Downstream addresses are
/// rebased to the region (slave sees offsets).
class AxiBus : public Module {
 public:
  AxiBus(Module& parent, const std::string& name, Clock& clk) : Module(parent, name), clk_(clk) {
    upstream_ = std::make_unique<AxiLink>(*this, "upstream", clk);
    Thread("write_ch", clk_, [this] { RunWrites(); });
    Thread("read_ch", clk_, [this] { RunReads(); });
  }

  /// The link the single master binds to (master side).
  AxiLink& upstream() { return *upstream_; }

  /// Registers a decoded region; bind the slave to the returned link.
  AxiLink& AddSlave(const AddressRange& range) {
    auto link = std::make_unique<AxiLink>(*this, "slave" + std::to_string(slaves_.size()), clk_);
    slaves_.push_back(SlaveEntry{range, std::move(link)});
    return *slaves_.back().link;
  }

 private:
  struct SlaveEntry {
    AddressRange range;
    std::unique_ptr<AxiLink> link;
  };

  int Decode(std::uint32_t addr) const {
    for (std::size_t i = 0; i < slaves_.size(); ++i) {
      if (slaves_[i].range.Contains(addr)) return static_cast<int>(i);
    }
    return -1;
  }

  void RunWrites() {
    for (;;) {
      const AW a = upstream_->aw.Pop();
      const int s = Decode(a.addr);
      CRAFT_ASSERT(s >= 0, full_name() << ": write decode miss @0x" << std::hex << a.addr);
      AW fwd = a;
      fwd.addr = a.addr - slaves_[s].range.base;
      slaves_[s].link->aw.Push(fwd);
      for (unsigned beat = 0; beat <= a.len; ++beat) {
        slaves_[s].link->w.Push(upstream_->w.Pop());
      }
      upstream_->b.Push(slaves_[s].link->b.Pop());
    }
  }

  void RunReads() {
    for (;;) {
      const AR a = upstream_->ar.Pop();
      const int s = Decode(a.addr);
      CRAFT_ASSERT(s >= 0, full_name() << ": read decode miss @0x" << std::hex << a.addr);
      AR fwd = a;
      fwd.addr = a.addr - slaves_[s].range.base;
      slaves_[s].link->ar.Push(fwd);
      for (unsigned beat = 0; beat <= a.len; ++beat) {
        upstream_->r.Push(slaves_[s].link->r.Pop());
      }
    }
  }

  Clock& clk_;
  std::unique_ptr<AxiLink> upstream_;
  std::vector<SlaveEntry> slaves_;
};

}  // namespace craft::matchlib::axi
