// MatchLib Encoder/Decoder: 1-hot encoders and decoders (paper Table 2),
// plus the priority encoder that HLS infers from src-loop style code — the
// structure responsible for the 25% area penalty in the paper's crossbar
// case study (§2.4).
#pragma once

#include <cstdint>

#include "kernel/report.hpp"

namespace craft::matchlib {

/// Binary index -> one-hot mask. idx must be < 64.
inline std::uint64_t OneHotEncode(unsigned idx) {
  CRAFT_ASSERT(idx < 64, "OneHotEncode index too large");
  return 1ull << idx;
}

/// One-hot mask -> binary index. Exactly one bit must be set.
inline unsigned OneHotDecode(std::uint64_t onehot) {
  CRAFT_ASSERT(onehot != 0 && (onehot & (onehot - 1)) == 0,
               "OneHotDecode input not one-hot: " << onehot);
  unsigned idx = 0;
  while (!(onehot & 1ull)) {
    onehot >>= 1;
    ++idx;
  }
  return idx;
}

/// True if mask has exactly one bit set.
inline bool IsOneHot(std::uint64_t mask) { return mask != 0 && (mask & (mask - 1)) == 0; }

/// Priority encoder: index of the *highest* set bit (-1 if none). This is
/// the structure HLS builds for "later iterations override earlier writes"
/// src-loop code.
inline int PriorityEncodeHigh(std::uint64_t mask) {
  if (mask == 0) return -1;
  int idx = 63;
  while (!(mask & (1ull << idx))) --idx;
  return idx;
}

/// Priority encoder: index of the *lowest* set bit (-1 if none).
inline int PriorityEncodeLow(std::uint64_t mask) {
  if (mask == 0) return -1;
  int idx = 0;
  while (!(mask & (1ull << idx))) ++idx;
  return idx;
}

/// Population count (used by arbitration fairness checks and tests).
inline unsigned PopCount(std::uint64_t mask) {
  unsigned n = 0;
  while (mask) {
    mask &= mask - 1;
    ++n;
  }
  return n;
}

}  // namespace craft::matchlib
