// MatchLib mem_array: abstract memory class (paper Table 2).
//
// "The mem_array class includes an array of data as internal state with read
// and write methods for accessing or updating the state." Maps to an SRAM
// macro (or register file) under HLS automatic RAM mapping; here it also
// counts accesses so benches can report bandwidth and bank conflicts.
#pragma once

#include <cstdint>
#include <vector>

#include "kernel/report.hpp"

namespace craft::matchlib {

template <typename T>
class MemArray {
 public:
  MemArray(std::size_t num_entries, std::size_t num_banks = 1, const T& init = T{})
      : banks_(num_banks), entries_per_bank_((num_entries + num_banks - 1) / num_banks),
        data_(num_entries, init) {
    CRAFT_ASSERT(num_banks >= 1, "MemArray needs at least one bank");
    CRAFT_ASSERT(num_entries >= num_banks, "MemArray smaller than bank count");
  }

  std::size_t size() const { return data_.size(); }
  std::size_t num_banks() const { return banks_; }

  /// Bank an address maps to (low-order interleaving, as in banked SRAMs).
  std::size_t BankOf(std::size_t addr) const { return addr % banks_; }

  const T& Read(std::size_t addr) {
    CRAFT_ASSERT(addr < data_.size(), "MemArray read OOB @" << addr);
    ++reads_;
    return data_[addr];
  }

  void Write(std::size_t addr, const T& value) {
    CRAFT_ASSERT(addr < data_.size(), "MemArray write OOB @" << addr);
    ++writes_;
    data_[addr] = value;
  }

  std::uint64_t read_count() const { return reads_; }
  std::uint64_t write_count() const { return writes_; }

  /// Direct (testbench) access without accounting, e.g. preloading images.
  std::vector<T>& raw() { return data_; }
  const std::vector<T>& raw() const { return data_; }

 private:
  std::size_t banks_;
  std::size_t entries_per_bank_;
  std::vector<T> data_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace craft::matchlib
