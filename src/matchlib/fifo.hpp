// MatchLib FIFO: a configurable FIFO C++ class (paper Table 2).
//
// Untimed state + methods, in the MatchLib "C++ class" style: usable inside
// a clocked process (the caller provides timing) and synthesizable by HLS as
// a register-file FIFO. Distinct from connections::Buffer, which is a
// *channel* with its own handshake; this is a building block for modules
// that manage their own queues (routers, arbitrated crossbars, ROBs).
#pragma once

#include <array>
#include <cstddef>

#include "kernel/report.hpp"
#include "kernel/stats.hpp"
#include "kernel/trace_events.hpp"

namespace craft::matchlib {

template <typename T, std::size_t kCapacity>
class Fifo {
 public:
  static_assert(kCapacity >= 1);

  bool Empty() const { return count_ == 0; }
  bool Full() const { return count_ == kCapacity; }
  std::size_t Size() const { return count_; }
  static constexpr std::size_t Capacity() { return kCapacity; }

  /// Attaches a craft-stats slot (see StatsRegistry::RegisterFifo); the
  /// owning module calls this at elaboration. nullptr (stats disabled) is
  /// fine — instrumentation stays a never-taken branch.
  void AttachStats(FifoStats* s) { stats_ = s; }

  /// Attaches a craft-trace track (see TraceEventSink::RegisterTrack); spans
  /// of resident elements are recorded as queue-residency slices. nullptr
  /// (tracing disabled) is fine.
  void AttachTrace(TraceTrack* t) { trace_ = t; }

  /// Sets the calling thread's trace context to the span of the front
  /// element *without* dequeuing. Owners that forward `Peek()` downstream
  /// before `Pop()` (e.g. routers pushing Peek() over a link) call this so
  /// the downstream channel extends the right span.
  void PrimeTraceContext() {
    if (trace_ && !Empty()) trace_->PrimeContext();
  }

  /// Enqueues; caller must check !Full() first (models hardware contract).
  void Push(const T& v) {
    CRAFT_ASSERT(!Full(), "Fifo::Push on full FIFO");
    data_[tail_] = v;
    tail_ = (tail_ + 1) % kCapacity;
    ++count_;
    if (stats_) {
      ++stats_->pushes;
      if (count_ > stats_->high_water) stats_->high_water = count_;
    }
    if (trace_) trace_->Enqueue();
  }

  /// Dequeues; caller must check !Empty() first.
  T Pop() {
    CRAFT_ASSERT(!Empty(), "Fifo::Pop on empty FIFO");
    T v = data_[head_];
    head_ = (head_ + 1) % kCapacity;
    --count_;
    if (stats_) ++stats_->pops;
    if (trace_) trace_->Dequeue();
    return v;
  }

  /// Front element without dequeuing.
  const T& Peek() const {
    CRAFT_ASSERT(!Empty(), "Fifo::Peek on empty FIFO");
    return data_[head_];
  }

  void Clear() {
    head_ = tail_ = 0;
    count_ = 0;
  }

 private:
  std::array<T, kCapacity> data_{};
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t count_ = 0;
  FifoStats* stats_ = nullptr;
  TraceTrack* trace_ = nullptr;
};

}  // namespace craft::matchlib
