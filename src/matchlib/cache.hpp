// MatchLib Cache: configurable linesize, capacity, associativity (paper
// Table 2). A blocking set-associative write-back/write-allocate cache with
// LRU replacement, expressed as a loosely-timed SystemC-style module:
//
//   cpu_req  -> [lookup / evict / refill FSM] -> cpu_resp
//                 |                      ^
//                 v                      |
//               mem_req  (word ops)   mem_resp
//
// Timing: one cycle per hit (the Pop/Push pair), plus one mem round trip
// per word moved on evictions and refills — the natural loosely-timed
// behaviour HLS would schedule into a pipelined cache controller.
#pragma once

#include <cstdint>
#include <vector>

#include "connections/connections.hpp"
#include "matchlib/mem_msgs.hpp"

namespace craft::matchlib {

struct CacheConfig {
  unsigned line_words = 4;     ///< words per line
  unsigned num_lines = 64;     ///< total lines (capacity = num_lines * line_words)
  unsigned associativity = 2;  ///< ways per set

  unsigned num_sets() const { return num_lines / associativity; }
  std::size_t capacity_words() const {
    return static_cast<std::size_t>(line_words) * num_lines;
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total == 0.0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class Cache : public Module {
 public:
  connections::In<MemReq> cpu_req;
  connections::Out<MemResp> cpu_resp;
  connections::Out<MemReq> mem_req;
  connections::In<MemResp> mem_resp;

  Cache(Module& parent, const std::string& name, Clock& clk, const CacheConfig& cfg)
      : Module(parent, name), cfg_(cfg) {
    CRAFT_ASSERT(cfg_.line_words >= 1 && (cfg_.line_words & (cfg_.line_words - 1)) == 0,
                 "line_words must be a power of two");
    CRAFT_ASSERT(cfg_.associativity >= 1 && cfg_.num_lines % cfg_.associativity == 0,
                 "num_lines must be a multiple of associativity");
    CRAFT_ASSERT((cfg_.num_sets() & (cfg_.num_sets() - 1)) == 0,
                 "number of sets must be a power of two");
    ways_.resize(cfg_.num_lines);
    for (auto& w : ways_) w.data.resize(cfg_.line_words, 0);
    Thread("run", clk, [this] { Run(); });
  }

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return cfg_; }

 private:
  struct Way {
    bool valid = false;
    bool dirty = false;
    std::uint32_t tag = 0;
    std::uint64_t lru = 0;  // smaller = older
    std::vector<std::uint64_t> data;
  };

  std::uint32_t SetOf(std::uint32_t addr) const {
    return (addr / cfg_.line_words) & (cfg_.num_sets() - 1);
  }
  std::uint32_t TagOf(std::uint32_t addr) const {
    return (addr / cfg_.line_words) / cfg_.num_sets();
  }
  std::uint32_t OffsetOf(std::uint32_t addr) const { return addr % cfg_.line_words; }
  Way& WayAt(std::uint32_t set, unsigned way) {
    return ways_[set * cfg_.associativity + way];
  }

  void Run() {
    for (;;) {
      const MemReq req = cpu_req.Pop();
      const std::uint32_t set = SetOf(req.addr);
      const std::uint32_t tag = TagOf(req.addr);
      int hit_way = -1;
      for (unsigned w = 0; w < cfg_.associativity; ++w) {
        if (WayAt(set, w).valid && WayAt(set, w).tag == tag) {
          hit_way = static_cast<int>(w);
          break;
        }
      }
      if (hit_way < 0) {
        ++stats_.misses;
        hit_way = Refill(set, tag, req.addr);
      } else {
        ++stats_.hits;
      }
      Way& way = WayAt(set, static_cast<unsigned>(hit_way));
      way.lru = ++lru_clock_;
      MemResp resp;
      resp.id = req.id;
      if (req.is_write) {
        way.data[OffsetOf(req.addr)] = req.wdata;
        way.dirty = true;
        resp.is_write_ack = true;
      } else {
        resp.rdata = way.data[OffsetOf(req.addr)];
      }
      cpu_resp.Push(resp);
    }
  }

  /// Picks a victim (invalid first, else LRU), writes it back if dirty,
  /// fetches the new line word-by-word. Returns the refilled way index.
  int Refill(std::uint32_t set, std::uint32_t tag, std::uint32_t addr) {
    int victim = -1;
    for (unsigned w = 0; w < cfg_.associativity; ++w) {
      if (!WayAt(set, w).valid) {
        victim = static_cast<int>(w);
        break;
      }
    }
    if (victim < 0) {
      std::uint64_t oldest = ~0ull;
      for (unsigned w = 0; w < cfg_.associativity; ++w) {
        if (WayAt(set, w).lru < oldest) {
          oldest = WayAt(set, w).lru;
          victim = static_cast<int>(w);
        }
      }
      ++stats_.evictions;
    }
    Way& way = WayAt(set, static_cast<unsigned>(victim));
    if (way.valid && way.dirty) {
      ++stats_.writebacks;
      const std::uint32_t wb_base =
          (way.tag * cfg_.num_sets() + set) * cfg_.line_words;
      for (unsigned i = 0; i < cfg_.line_words; ++i) {
        MemReq wr;
        wr.is_write = true;
        wr.addr = wb_base + i;
        wr.wdata = way.data[i];
        mem_req.Push(wr);
        (void)mem_resp.Pop();  // write ack
      }
    }
    const std::uint32_t base = (addr / cfg_.line_words) * cfg_.line_words;
    for (unsigned i = 0; i < cfg_.line_words; ++i) {
      MemReq rd;
      rd.addr = base + i;
      mem_req.Push(rd);
      way.data[i] = mem_resp.Pop().rdata;
    }
    way.valid = true;
    way.dirty = false;
    way.tag = tag;
    return victim;
  }

  CacheConfig cfg_;
  std::vector<Way> ways_;
  CacheStats stats_;
  std::uint64_t lru_clock_ = 0;
};

}  // namespace craft::matchlib
