// Umbrella header for MatchLib — the Modular Approach To Circuits and
// Hardware Library (paper §2.4, Table 2).
#pragma once

#include "matchlib/arbiter.hpp"
#include "matchlib/arbitrated_crossbar.hpp"
#include "matchlib/arbitrated_scratchpad.hpp"
#include "matchlib/axi.hpp"
#include "matchlib/cache.hpp"
#include "matchlib/crossbar.hpp"
#include "matchlib/encdec.hpp"
#include "matchlib/fifo.hpp"
#include "matchlib/float.hpp"
#include "matchlib/mem_array.hpp"
#include "matchlib/mem_msgs.hpp"
#include "matchlib/reorder_buffer.hpp"
#include "matchlib/routers.hpp"
#include "matchlib/scratchpad.hpp"
#include "matchlib/serdes.hpp"
#include "matchlib/vector.hpp"
