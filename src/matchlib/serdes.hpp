// MatchLib Serializer/Deserializer: N-bit packets to/from M cycles of
// (N/M)-bit packets (paper Table 2). Used in the PE router interface to
// narrow wide datapath messages onto NoC link widths.
#pragma once

#include <cstdint>

#include "connections/connections.hpp"
#include "kernel/bits.hpp"

namespace craft::matchlib {

/// Serializer: pops T (width Marshal<T>::kWidth), pushes kSliceBits-wide
/// slices, one per cycle, most message bits in FlitCount() cycles.
template <typename T, unsigned kSliceBits>
class Serializer : public Module {
 public:
  static_assert(kSliceBits >= 1 && kSliceBits <= 64);

  connections::In<T> in;
  connections::Out<std::uint64_t> out;

  Serializer(Module& parent, const std::string& name, Clock& clk) : Module(parent, name) {
    Thread("run", clk, [this] { Run(); });
  }

  static constexpr unsigned SliceCount() {
    return DivCeil(Marshal<T>::kWidth, kSliceBits);
  }

 private:
  void Run() {
    for (;;) {
      const T msg = in.Pop();
      BitStream bits;
      Marshal<T>::Write(bits, msg);
      for (std::uint64_t slice : bits.ToFlits(kSliceBits)) out.Push(slice);
    }
  }
};

/// Deserializer: pops kSliceBits-wide slices, reassembles T messages.
template <typename T, unsigned kSliceBits>
class Deserializer : public Module {
 public:
  static_assert(kSliceBits >= 1 && kSliceBits <= 64);

  connections::In<std::uint64_t> in;
  connections::Out<T> out;

  Deserializer(Module& parent, const std::string& name, Clock& clk) : Module(parent, name) {
    Thread("run", clk, [this] { Run(); });
  }

  static constexpr unsigned SliceCount() {
    return DivCeil(Marshal<T>::kWidth, kSliceBits);
  }

 private:
  void Run() {
    std::vector<std::uint64_t> slices;
    for (;;) {
      slices.push_back(in.Pop());
      if (slices.size() == SliceCount()) {
        BitStream bits = BitStream::FromFlits(slices, kSliceBits);
        out.Push(Marshal<T>::Read(bits));
        slices.clear();
      }
    }
  }
};

}  // namespace craft::matchlib
