// MatchLib Reorder Buffer: queue with in-order reads and out-of-order writes
// (paper Table 2). The classic use is tolerating variable-latency responses
// (banked memories, NoC round trips) while presenting an in-order stream:
// allocate a slot per request at issue, fill slots as responses arrive in
// any order, drain from the head only when the head is filled.
#pragma once

#include <cstdint>
#include <vector>

#include "kernel/report.hpp"

namespace craft::matchlib {

template <typename T, std::size_t kEntries>
class ReorderBuffer {
 public:
  static_assert(kEntries >= 1);

  using Tag = std::uint32_t;

  bool CanAllocate() const { return count_ < kEntries; }

  /// Reserves the next in-order slot; the returned tag accompanies the
  /// request and routes the response back via Fill().
  Tag Allocate() {
    CRAFT_ASSERT(CanAllocate(), "ReorderBuffer::Allocate on full ROB");
    const Tag tag = tail_;
    valid_[tail_] = false;
    allocated_[tail_] = true;
    tail_ = (tail_ + 1) % kEntries;
    ++count_;
    return tag;
  }

  /// Out-of-order write: fills the slot for `tag`.
  void Fill(Tag tag, const T& value) {
    CRAFT_ASSERT(tag < kEntries, "ReorderBuffer::Fill tag OOB");
    CRAFT_ASSERT(allocated_[tag], "ReorderBuffer::Fill on unallocated tag " << tag);
    CRAFT_ASSERT(!valid_[tag], "ReorderBuffer::Fill double-fill of tag " << tag);
    data_[tag] = value;
    valid_[tag] = true;
  }

  /// True when the oldest entry has been filled and can be read.
  bool CanPop() const { return count_ > 0 && valid_[head_]; }

  /// In-order read: pops the oldest entry.
  T Pop() {
    CRAFT_ASSERT(CanPop(), "ReorderBuffer::Pop head not ready");
    T v = data_[head_];
    valid_[head_] = false;
    allocated_[head_] = false;
    head_ = (head_ + 1) % kEntries;
    --count_;
    return v;
  }

  std::size_t Size() const { return count_; }
  static constexpr std::size_t Capacity() { return kEntries; }

 private:
  std::vector<T> data_ = std::vector<T>(kEntries);
  std::vector<bool> valid_ = std::vector<bool>(kEntries, false);
  std::vector<bool> allocated_ = std::vector<bool>(kEntries, false);
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t count_ = 0;
};

}  // namespace craft::matchlib
