// MatchLib ArbitratedCrossbar: crossbar with conflict arbitration & queuing
// (paper Table 2). The design-under-test of the paper's Fig. 3 experiment.
//
// N inputs each carry (data, dest). Each input owns a small queue; each
// output owns a round-robin arbiter. Per cycle, every output grants one
// requesting input; granted entries traverse the crossbar. The class is
// untimed (MatchLib "C++ class" style): a module calls Push/Arbitrate from
// its clocked process, giving HLS the freedom to pipeline.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "matchlib/arbiter.hpp"
#include "matchlib/fifo.hpp"

namespace craft::matchlib {

template <typename T, unsigned kIn, unsigned kOut, unsigned kQueueDepth = 4>
class ArbitratedCrossbar {
 public:
  static_assert(kIn >= 1 && kIn <= 64 && kOut >= 1 && kOut <= 64);

  ArbitratedCrossbar() {
    arbiters_.reserve(kOut);
    for (unsigned o = 0; o < kOut; ++o) arbiters_.emplace_back(kIn);
  }

  /// True if input port `in` can accept a new entry this cycle.
  bool CanAccept(unsigned in) const { return !queues_[in].Full(); }

  /// Enqueues (data, dest) at input `in`; caller must check CanAccept.
  void Push(unsigned in, const T& data, unsigned dest) {
    CRAFT_ASSERT(in < kIn, "ArbitratedCrossbar input OOB");
    CRAFT_ASSERT(dest < kOut, "ArbitratedCrossbar dest OOB");
    queues_[in].Push(Entry{data, dest});
  }

  /// One arbitration cycle: every output round-robin-picks among the inputs
  /// whose head entry targets it; winners are dequeued and delivered.
  std::array<std::optional<T>, kOut> Arbitrate() {
    // Gather per-output request masks from queue heads.
    std::array<std::uint64_t, kOut> req{};
    for (unsigned i = 0; i < kIn; ++i) {
      if (!queues_[i].Empty()) req[queues_[i].Peek().dest] |= (1ull << i);
    }
    std::array<std::optional<T>, kOut> out;
    for (unsigned o = 0; o < kOut; ++o) {
      const int winner = arbiters_[o].PickIndex(req[o]);
      if (winner >= 0) {
        out[o] = queues_[winner].Pop().data;
        ++transfers_;
      }
    }
    return out;
  }

  bool AllQueuesEmpty() const {
    for (unsigned i = 0; i < kIn; ++i) {
      if (!queues_[i].Empty()) return false;
    }
    return true;
  }

  std::uint64_t transfer_count() const { return transfers_; }

 private:
  struct Entry {
    T data;
    unsigned dest;
  };
  std::array<Fifo<Entry, kQueueDepth>, kIn> queues_;
  std::vector<Arbiter> arbiters_;
  std::uint64_t transfers_ = 0;
};

}  // namespace craft::matchlib
