// MatchLib ArbitratedScratchpad: banked memories with arbitration & queuing
// (paper Table 2). N request ports share kBanks single-ported banks;
// conflicting requests queue at the banks and are served round-robin, one
// per bank per cycle. Used for the PE scratchpad in the prototype SoC.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "matchlib/arbiter.hpp"
#include "matchlib/fifo.hpp"
#include "matchlib/mem_array.hpp"

namespace craft::matchlib {

/// Load/store request into a scratchpad.
template <typename T>
struct ScratchpadRequest {
  bool is_write = false;
  std::uint32_t addr = 0;
  T wdata{};
  bool operator==(const ScratchpadRequest&) const = default;
};

/// Response: loads return data; stores return an ack (valid only).
template <typename T>
struct ScratchpadResponse {
  bool is_write_ack = false;
  std::uint32_t addr = 0;
  T rdata{};
  bool operator==(const ScratchpadResponse&) const = default;
};

template <typename T, unsigned kBanks, unsigned kEntriesPerBank, unsigned kPorts,
          unsigned kQueueDepth = 4>
class ArbitratedScratchpad {
 public:
  static_assert(kBanks >= 1 && kPorts >= 1 && kPorts <= 64);

  ArbitratedScratchpad() : mem_(kBanks * kEntriesPerBank, kBanks) {
    arbiters_.reserve(kBanks);
    for (unsigned b = 0; b < kBanks; ++b) arbiters_.emplace_back(kPorts);
  }

  static constexpr std::size_t Size() { return kBanks * kEntriesPerBank; }

  /// True if port `p`'s request queue can take another request.
  bool CanAccept(unsigned p) const { return !queues_[p].Full(); }

  /// Enqueues a request from port `p`; caller must check CanAccept.
  void Request(unsigned p, const ScratchpadRequest<T>& req) {
    CRAFT_ASSERT(p < kPorts, "scratchpad port OOB");
    CRAFT_ASSERT(req.addr < Size(), "scratchpad addr OOB @" << req.addr);
    queues_[p].Push(req);
  }

  /// One cycle: each bank serves one queued request (round-robin over
  /// ports); returns per-port responses for requests served this cycle.
  std::array<std::optional<ScratchpadResponse<T>>, kPorts> Tick() {
    std::array<std::uint64_t, kBanks> req_mask{};
    for (unsigned p = 0; p < kPorts; ++p) {
      if (!queues_[p].Empty()) {
        req_mask[BankOf(queues_[p].Peek().addr)] |= (1ull << p);
      }
    }
    std::array<std::optional<ScratchpadResponse<T>>, kPorts> resp;
    for (unsigned b = 0; b < kBanks; ++b) {
      const int p = arbiters_[b].PickIndex(req_mask[b]);
      if (p < 0) continue;
      const ScratchpadRequest<T> r = queues_[p].Pop();
      ScratchpadResponse<T> out;
      out.addr = r.addr;
      if (r.is_write) {
        mem_.Write(r.addr, r.wdata);
        out.is_write_ack = true;
      } else {
        out.rdata = mem_.Read(r.addr);
      }
      resp[p] = out;
      if (req_mask[b] & (req_mask[b] - 1)) ++conflict_cycles_;
    }
    return resp;
  }

  std::size_t BankOf(std::uint32_t addr) const { return mem_.BankOf(addr); }

  /// Cycles in which at least one bank had more than one contender.
  std::uint64_t conflict_cycles() const { return conflict_cycles_; }

  MemArray<T>& mem() { return mem_; }

 private:
  MemArray<T> mem_;
  std::array<Fifo<ScratchpadRequest<T>, kQueueDepth>, kPorts> queues_;
  std::vector<Arbiter> arbiters_;
  std::uint64_t conflict_cycles_ = 0;
};

}  // namespace craft::matchlib
