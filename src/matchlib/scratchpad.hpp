// MatchLib Scratchpad: banked memory array with crossbar (paper Table 2).
//
// The SystemC-module wrapper around ArbitratedScratchpad: kPorts LI request
// channels in, kPorts LI response channels out. One clocked process accepts
// up to one request per port per cycle, lets each bank serve one request
// (round-robin on conflicts), and returns responses — the structure of the
// prototype SoC's Global Memory and PE scratchpads (Fig. 5).
#pragma once

#include <array>

#include "connections/connections.hpp"
#include "matchlib/arbitrated_scratchpad.hpp"
#include "matchlib/mem_msgs.hpp"

namespace craft::matchlib {

template <unsigned kBanks, unsigned kEntriesPerBank, unsigned kPorts>
class Scratchpad : public Module {
 public:
  std::array<connections::In<MemReq>, kPorts> req_in;
  std::array<connections::Out<MemResp>, kPorts> resp_out;

  Scratchpad(Module& parent, const std::string& name, Clock& clk) : Module(parent, name) {
    Thread("run", clk, [this] { Run(); });
  }

  using Core = ArbitratedScratchpad<std::uint64_t, kBanks, kEntriesPerBank, kPorts>;
  Core& core() { return core_; }

  static constexpr std::size_t SizeWords() { return Core::Size(); }

 private:
  void Run() {
    for (;;) {
      // Accept one request per port per cycle. Acceptance is gated so that a
      // response slot is always reserved: the module never drops or blocks
      // on a backpressured response channel.
      for (unsigned p = 0; p < kPorts; ++p) {
        if (!req_in[p].bound() || !core_.CanAccept(p)) continue;
        if (ids_[p].Full() || ids_[p].Size() + pending_[p].Size() >= kPendingDepth) {
          continue;
        }
        MemReq r;
        if (req_in[p].PopNB(r)) {
          ScratchpadRequest<std::uint64_t> sr;
          sr.is_write = r.is_write;
          sr.addr = r.addr;
          sr.wdata = r.wdata;
          ids_[p].Push(r.id);
          core_.Request(p, sr);
        }
      }
      // Banks serve; responses return on the requesting port, in order.
      auto resp = core_.Tick();
      for (unsigned p = 0; p < kPorts; ++p) {
        if (!resp[p].has_value()) continue;
        MemResp out;
        out.is_write_ack = resp[p]->is_write_ack;
        out.rdata = resp[p]->rdata;
        out.id = ids_[p].Pop();
        pending_[p].Push(out);
      }
      // Drain pending responses (one per port per cycle).
      for (unsigned p = 0; p < kPorts; ++p) {
        if (!pending_[p].Empty() && resp_out[p].bound() &&
            resp_out[p].PushNB(pending_[p].Peek())) {
          pending_[p].Pop();
        }
      }
      wait();
    }
  }

  static constexpr std::size_t kPendingDepth = 16;

  Core core_;
  // Per-port in-flight ids; responses per port come back in request order.
  std::array<Fifo<std::uint8_t, kPendingDepth>, kPorts> ids_;
  std::array<Fifo<MemResp, kPendingDepth>, kPorts> pending_;
};

}  // namespace craft::matchlib
