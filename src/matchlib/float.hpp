// MatchLib Float: floating-point arithmetic functions — mul, add, mul-add —
// (paper Table 2). Parameterized soft-float over exponent/mantissa widths,
// written the way the synthesizable component computes: unpack, integer
// mantissa datapath with guard/round/sticky bits, round-to-nearest-even,
// repack.
//
// Hardware-style simplifications (documented, ML-accelerator-typical):
//  * Subnormal inputs are treated as zero (DAZ) and subnormal results flush
//    to zero (FTZ) — standard practice in ML datapaths to avoid the
//    normalization shifter area.
//  * MulAdd is mul-then-add (two roundings), matching a discrete FMA built
//    from the mul and add components.
//  * NaNs are canonicalized; infinities propagate.
//
// For normal inputs/outputs, Mul and Add are bit-exact against IEEE-754
// round-to-nearest-even (verified against host float32 in the test suite).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "kernel/report.hpp"

namespace craft::matchlib {

/// IEEE-754-style float with E exponent bits and M mantissa bits.
/// Fp<8,23> is float32; Fp<5,10> is float16; Fp<8,7> is bfloat16.
template <unsigned E, unsigned M>
class Fp {
 public:
  static_assert(E >= 2 && E <= 11 && M >= 1 && M <= 52 && E + M + 1 <= 64);

  using Bits = std::uint64_t;

  static constexpr unsigned kWidth = 1 + E + M;
  static constexpr int kBias = (1 << (E - 1)) - 1;
  static constexpr int kMaxExp = (1 << E) - 1;  // all-ones: inf/nan

  constexpr Fp() = default;
  static constexpr Fp FromBits(Bits b) {
    Fp f;
    f.bits_ = b & ((kWidth == 64) ? ~0ull : ((1ull << kWidth) - 1));
    return f;
  }
  constexpr Bits bits() const { return bits_; }

  bool operator==(const Fp&) const = default;

  // ---- field access ----
  constexpr bool sign() const { return (bits_ >> (E + M)) & 1; }
  constexpr int exp_field() const { return static_cast<int>((bits_ >> M) & ((1u << E) - 1)); }
  constexpr Bits man_field() const { return bits_ & ((1ull << M) - 1); }

  constexpr bool IsZero() const { return exp_field() == 0; }  // DAZ: subnormal == 0
  constexpr bool IsInf() const { return exp_field() == kMaxExp && man_field() == 0; }
  constexpr bool IsNaN() const { return exp_field() == kMaxExp && man_field() != 0; }

  static constexpr Fp Zero(bool negative = false) {
    return FromBits(static_cast<Bits>(negative) << (E + M));
  }
  static constexpr Fp Inf(bool negative = false) {
    return FromBits((static_cast<Bits>(negative) << (E + M)) |
                    (static_cast<Bits>(kMaxExp) << M));
  }
  static constexpr Fp QuietNaN() {
    return FromBits((static_cast<Bits>(kMaxExp) << M) | (1ull << (M - 1)));
  }

  // ---- conversion (via double, rounded RNE to this format) ----

  static Fp FromDouble(double d) {
    std::uint64_t db;
    std::memcpy(&db, &d, 8);
    const bool s = db >> 63;
    const int de = static_cast<int>((db >> 52) & 0x7ff);
    const std::uint64_t dm = db & ((1ull << 52) - 1);
    if (de == 0x7ff) return dm ? QuietNaN() : Inf(s);
    if (de == 0) return Zero(s);  // zero or subnormal double: DAZ
    // Unbiased exponent and 53-bit mantissa (hidden bit set).
    int e = de - 1023;
    std::uint64_t man = (1ull << 52) | dm;
    return Pack(s, e, man, 52);
  }

  double ToDouble() const {
    if (IsNaN()) return std::numeric_limits<double>::quiet_NaN();
    if (IsInf()) return sign() ? -std::numeric_limits<double>::infinity()
                               : std::numeric_limits<double>::infinity();
    if (IsZero()) return sign() ? -0.0 : 0.0;
    const int e = exp_field() - kBias;
    const double frac =
        1.0 + static_cast<double>(man_field()) / static_cast<double>(1ull << M);
    double v = std::ldexp(frac, e);
    return sign() ? -v : v;
  }

  static Fp FromFloat(float f) { return FromDouble(static_cast<double>(f)); }
  float ToFloat() const { return static_cast<float>(ToDouble()); }

  // ---- the MatchLib arithmetic functions ----

  /// Floating-point multiply with round-to-nearest-even.
  friend Fp FpMul(const Fp& a, const Fp& b) {
    if (a.IsNaN() || b.IsNaN()) return QuietNaN();
    const bool s = a.sign() ^ b.sign();
    if (a.IsInf() || b.IsInf()) {
      if (a.IsZero() || b.IsZero()) return QuietNaN();  // inf * 0
      return Inf(s);
    }
    if (a.IsZero() || b.IsZero()) return Zero(s);
    const int e = (a.exp_field() - kBias) + (b.exp_field() - kBias);
    const std::uint64_t ma = (1ull << M) | a.man_field();
    const std::uint64_t mb = (1ull << M) | b.man_field();
    // Product has its leading one at bit 2M or 2M+1.
    const std::uint64_t p = ma * mb;  // fits: 2(M+1) <= 106... M<=26 for exactness
    static_assert(2 * (M + 1) <= 64, "mantissa product must fit in 64 bits");
    if (p & (1ull << (2 * M + 1))) {
      return Pack(s, e + 1, p, 2 * M + 1);
    }
    return Pack(s, e, p, 2 * M);
  }

  /// Floating-point add with round-to-nearest-even.
  friend Fp FpAdd(const Fp& a, const Fp& b) {
    if (a.IsNaN() || b.IsNaN()) return QuietNaN();
    if (a.IsInf() || b.IsInf()) {
      if (a.IsInf() && b.IsInf() && a.sign() != b.sign()) return QuietNaN();
      return a.IsInf() ? a : b;
    }
    if (a.IsZero()) return b.IsZero() ? Zero(a.sign() && b.sign()) : b;
    if (b.IsZero()) return a;

    // Order by magnitude: |x| >= |y|.
    Fp x = a, y = b;
    if ((y.exp_field() > x.exp_field()) ||
        (y.exp_field() == x.exp_field() && y.man_field() > x.man_field())) {
      x = b;
      y = a;
    }
    const int ex = x.exp_field() - kBias;
    const int d = x.exp_field() - y.exp_field();
    // 3 extra bits: guard, round, sticky.
    const std::uint64_t mx = ((1ull << M) | x.man_field()) << 3;
    std::uint64_t my = ((1ull << M) | y.man_field()) << 3;
    if (d >= static_cast<int>(M) + 4) {
      my = 1;  // entirely below the guard bits: pure sticky
    } else if (d > 0) {
      const std::uint64_t lost = my & ((1ull << d) - 1);
      my >>= d;
      if (lost) my |= 1;  // sticky
    }

    if (x.sign() == y.sign()) {
      std::uint64_t sum = mx + my;  // leading one at M+3 or M+4
      if (sum & (1ull << (M + 4))) {
        return Pack(x.sign(), ex + 1, sum, M + 4);
      }
      return Pack(x.sign(), ex, sum, M + 3);
    }

    std::uint64_t diff = mx - my;
    if (diff == 0) return Zero(false);
    // Normalize: bring the leading one up to bit M+3.
    int e = ex;
    int msb = 63;
    while (!(diff & (1ull << msb))) --msb;
    if (msb < static_cast<int>(M) + 3) {
      diff <<= (static_cast<int>(M) + 3 - msb);
      e -= (static_cast<int>(M) + 3 - msb);
    }
    return Pack(x.sign(), e, diff, M + 3);
  }

  friend Fp FpSub(const Fp& a, const Fp& b) {
    Fp nb = FromBits(b.bits() ^ (1ull << (E + M)));
    return FpAdd(a, nb);
  }

  /// Mul-add: a*b + c with two roundings (discrete FMA).
  friend Fp FpMulAdd(const Fp& a, const Fp& b, const Fp& c) {
    return FpAdd(FpMul(a, b), c);
  }

  // Arithmetic operator sugar so Fp works inside matchlib::Vector.
  friend Fp operator+(const Fp& a, const Fp& b) { return FpAdd(a, b); }
  friend Fp operator-(const Fp& a, const Fp& b) { return FpSub(a, b); }
  friend Fp operator*(const Fp& a, const Fp& b) { return FpMul(a, b); }
  friend bool operator>(const Fp& a, const Fp& b) { return a.ToDouble() > b.ToDouble(); }
  friend bool operator<(const Fp& a, const Fp& b) { return a.ToDouble() < b.ToDouble(); }

 private:
  /// Packs sign / unbiased exponent / mantissa into the format, where the
  /// mantissa's leading (hidden) one sits at bit `msb` and everything below
  /// bit (msb - M) participates in round-to-nearest-even.
  static Fp Pack(bool s, int e, std::uint64_t man, unsigned msb) {
    CRAFT_ASSERT(man & (1ull << msb), "Pack: mantissa not normalized");
    const unsigned shift = msb - M;
    std::uint64_t kept = man >> shift;
    if (shift > 0) {
      const std::uint64_t rem = man & ((1ull << shift) - 1);
      const std::uint64_t half = 1ull << (shift - 1);
      if (rem > half || (rem == half && (kept & 1))) {
        ++kept;
        if (kept & (1ull << (M + 1))) {
          kept >>= 1;
          ++e;
        }
      }
    }
    const int be = e + kBias;
    if (be >= kMaxExp) return Inf(s);
    if (be <= 0) return Zero(s);  // FTZ
    return FromBits((static_cast<Bits>(s) << (E + M)) | (static_cast<Bits>(be) << M) |
                    (kept & ((1ull << M) - 1)));
  }

  Bits bits_ = 0;
};

using Float32 = Fp<8, 23>;
using Float16 = Fp<5, 10>;
using BFloat16 = Fp<8, 7>;

}  // namespace craft::matchlib
