// MatchLib Vector: fixed-length vector helper container with vector
// operations (paper Table 2). Used by the PE datapath to express vector
// multiply, dot-product, and reduction kernels; each op unrolls fully under
// HLS into a lane-parallel datapath.
#pragma once

#include <array>
#include <cstddef>
#include <functional>

#include "kernel/report.hpp"

namespace craft::matchlib {

template <typename T, std::size_t kLanes>
class Vector {
 public:
  static_assert(kLanes >= 1);

  Vector() : v_{} {}
  explicit Vector(const T& fill) { v_.fill(fill); }
  Vector(std::initializer_list<T> init) {
    CRAFT_ASSERT(init.size() == kLanes, "Vector initializer size mismatch");
    std::size_t i = 0;
    for (const T& x : init) v_[i++] = x;
  }

  static constexpr std::size_t Lanes() { return kLanes; }

  T& operator[](std::size_t i) {
    CRAFT_ASSERT(i < kLanes, "Vector index OOB");
    return v_[i];
  }
  const T& operator[](std::size_t i) const {
    CRAFT_ASSERT(i < kLanes, "Vector index OOB");
    return v_[i];
  }

  bool operator==(const Vector&) const = default;

  // ---- lane-wise ops ----

  friend Vector operator+(const Vector& a, const Vector& b) {
    return Zip(a, b, [](const T& x, const T& y) { return x + y; });
  }
  friend Vector operator-(const Vector& a, const Vector& b) {
    return Zip(a, b, [](const T& x, const T& y) { return x - y; });
  }
  friend Vector operator*(const Vector& a, const Vector& b) {
    return Zip(a, b, [](const T& x, const T& y) { return x * y; });
  }

  /// Lane-wise multiply by scalar.
  Vector Scale(const T& s) const {
    Vector r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v_[i] = v_[i] * s;
    return r;
  }

  /// Lane-wise fused multiply-add: this*b + c.
  Vector MulAdd(const Vector& b, const Vector& c) const {
    Vector r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v_[i] = v_[i] * b.v_[i] + c.v_[i];
    return r;
  }

  // ---- reductions (tree-shaped under HLS) ----

  T ReduceSum() const {
    T acc = v_[0];
    for (std::size_t i = 1; i < kLanes; ++i) acc = acc + v_[i];
    return acc;
  }

  T ReduceMax() const {
    T acc = v_[0];
    for (std::size_t i = 1; i < kLanes; ++i) acc = (v_[i] > acc) ? v_[i] : acc;
    return acc;
  }

  T ReduceMin() const {
    T acc = v_[0];
    for (std::size_t i = 1; i < kLanes; ++i) acc = (v_[i] < acc) ? v_[i] : acc;
    return acc;
  }

  /// Dot product of two vectors (multiply + reduction tree).
  friend T Dot(const Vector& a, const Vector& b) { return (a * b).ReduceSum(); }

 private:
  template <typename F>
  static Vector Zip(const Vector& a, const Vector& b, F f) {
    Vector r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v_[i] = f(a.v_[i], b.v_[i]);
    return r;
  }

  std::array<T, kLanes> v_;
};

}  // namespace craft::matchlib
