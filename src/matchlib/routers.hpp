// MatchLib NoC routers (paper Table 2):
//
//  * SFRouter  — Store-and-Forward router: a whole packet is buffered at the
//    input before any flit is forwarded; each output then streams the packet
//    without interleaving. Simple, higher per-hop latency (packet length).
//
//  * WHVCRouter — Wormhole router with Virtual Channels: flits are forwarded
//    as soon as the head establishes a route, and flits of packets on
//    different VCs interleave on the same physical link. Low per-hop latency
//    (one cycle per flit in the absence of contention).
//
// Both are kPorts-radix routers with an injectable routing function
// (dest -> output port), so the same component serves rings, meshes, and
// trees. The prototype SoC instantiates WHVCRouter in an XY-routed mesh.
//
// Flow control: link-level backpressure via the LI channels (a flit stays
// put when the downstream channel refuses it). Credit-based per-VC
// backpressure is abstracted away — per-VC input FIFOs plus link
// backpressure preserve deadlock-freedom for the request/response VC
// discipline the SoC uses (requests on VC0, responses on VC1).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "connections/packetizer.hpp"
#include "matchlib/arbiter.hpp"
#include "matchlib/fifo.hpp"

namespace craft::matchlib {

using connections::Flit;

/// Routing function: maps a packet's destination tag to an output port.
using RouteFn = std::function<unsigned(std::uint8_t dest)>;

/// Store-and-Forward router.
template <unsigned kPorts>
class SFRouter : public Module {
 public:
  static_assert(kPorts >= 2 && kPorts <= 64);

  std::array<connections::In<Flit>, kPorts> in;
  std::array<connections::Out<Flit>, kPorts> out;

  SFRouter(Module& parent, const std::string& name, Clock& clk, RouteFn route,
           unsigned max_buffered_packets = 2)
      : Module(parent, name), route_(std::move(route)), max_pkts_(max_buffered_packets) {
    // Routers tolerate unconnected ports by design (mesh edges); the run
    // loop guards every access with bound().
    for (unsigned p = 0; p < kPorts; ++p) {
      in[p].MarkOptional();
      out[p].MarkOptional();
    }
    for (unsigned o = 0; o < kPorts; ++o) arbiters_.emplace_back(kPorts);
    Thread("run", clk, [this] { Run(); });
  }

  std::uint64_t flits_forwarded() const { return flits_forwarded_; }
  std::uint64_t packets_forwarded() const { return packets_forwarded_; }

 private:
  struct OutState {
    std::vector<Flit> pkt;
    std::size_t next = 0;
    bool active = false;
  };

  void Run() {
    for (;;) {
      // 1) Stream flits of packets already allocated to outputs.
      for (unsigned o = 0; o < kPorts; ++o) {
        OutState& os = outs_[o];
        if (!os.active || !out[o].bound()) continue;
        if (out[o].PushNB(os.pkt[os.next])) {
          ++flits_forwarded_;
          if (++os.next == os.pkt.size()) {
            os.active = false;
            ++packets_forwarded_;
          }
        }
      }
      // 2) Allocate idle outputs: round-robin over inputs whose head
      //    *complete* packet routes to that output.
      for (unsigned o = 0; o < kPorts; ++o) {
        if (outs_[o].active) continue;
        std::uint64_t req = 0;
        for (unsigned i = 0; i < kPorts; ++i) {
          if (!complete_[i].empty() && route_(complete_[i].front().front().dest) == o) {
            req |= (1ull << i);
          }
        }
        const int winner = arbiters_[o].PickIndex(req);
        if (winner >= 0) {
          outs_[o].pkt = std::move(complete_[winner].front());
          complete_[winner].pop_front();
          outs_[o].next = 0;
          outs_[o].active = true;
        }
      }
      // 3) Accept one flit per input; a packet becomes eligible only once
      //    its tail flit has arrived (store-and-forward).
      for (unsigned i = 0; i < kPorts; ++i) {
        if (!in[i].bound() || complete_[i].size() >= max_pkts_) continue;
        Flit f;
        if (in[i].PopNB(f)) {
          assembling_[i].push_back(f);
          if (f.last) {
            complete_[i].push_back(std::move(assembling_[i]));
            assembling_[i].clear();
          }
        }
      }
      wait();
    }
  }

  RouteFn route_;
  unsigned max_pkts_;
  std::array<std::vector<Flit>, kPorts> assembling_;
  std::array<std::deque<std::vector<Flit>>, kPorts> complete_;
  std::array<OutState, kPorts> outs_;
  std::vector<Arbiter> arbiters_;
  std::uint64_t flits_forwarded_ = 0;
  std::uint64_t packets_forwarded_ = 0;
};

/// Wormhole router with virtual channels.
///
/// Every port carries kVCs *independently buffered* virtual channels: each
/// VC has its own input FIFO and its own physical link channel (the LI
/// channel stands in for the per-VC credit loop of the silicon router).
/// This gives true VC isolation — backpressure on one VC can never block
/// another — which is what makes the request/response VC discipline of the
/// SoC deadlock-free. The switch still forwards at most one flit per output
/// port per cycle (the physical link constraint), arbitrating round-robin
/// among the (input, vc) pairs whose wormhole route targets that output.
template <unsigned kPorts, unsigned kVCs = 2, unsigned kVcFifoDepth = 8>
class WHVCRouter : public Module {
 public:
  static_assert(kPorts >= 2 && kPorts <= 16 && kVCs >= 1 && kVCs <= 8);
  static_assert(kPorts * kVCs <= 64, "arbiter width limit");

  std::array<std::array<connections::In<Flit>, kVCs>, kPorts> in;
  std::array<std::array<connections::Out<Flit>, kVCs>, kPorts> out;

  WHVCRouter(Module& parent, const std::string& name, Clock& clk, RouteFn route)
      : Module(parent, name), route_(std::move(route)) {
    // Mesh-edge ports legitimately stay unbound; the run loop checks bound().
    for (unsigned p = 0; p < kPorts; ++p) {
      for (unsigned v = 0; v < kVCs; ++v) {
        in[p][v].MarkOptional();
        out[p][v].MarkOptional();
      }
    }
    for (unsigned o = 0; o < kPorts; ++o) arbiters_.emplace_back(kPorts * kVCs);
    // craft-stats: one FifoStats slot per (port, vc) input queue, named after
    // the router's hierarchical name. AttachStats(nullptr) is a no-op.
    // craft-trace mirrors the same per-(port, vc) granularity so a flit's
    // residency in each hop's VC queue shows up as its own slice.
    for (unsigned p = 0; p < kPorts; ++p) {
      for (unsigned v = 0; v < kVCs; ++v) {
        const std::string vc_name =
            full_name() + ".vc" + std::to_string(p) + "_" + std::to_string(v);
        vcs_[VcIndex(p, v)].fifo.AttachStats(
            sim().stats().RegisterFifo(vc_name, kVcFifoDepth));
        vcs_[VcIndex(p, v)].fifo.AttachTrace(
            sim().trace_events().RegisterTrack(vc_name, "vc_fifo", clk.name()));
      }
    }
    Thread("run", clk, [this] { Run(); });
  }

  std::uint64_t flits_forwarded() const { return flits_forwarded_; }

 private:
  struct VcState {
    Fifo<Flit, kVcFifoDepth> fifo;
    int route = -1;  // allocated output port; -1 until a head flit arrives
    std::deque<unsigned> pending_routes;  // routes of queued head flits
  };

  unsigned VcIndex(unsigned port, unsigned vc) const { return port * kVCs + vc; }

  void Run() {
    for (;;) {
      // 1) Route allocation: a VC whose head-of-queue flit starts a packet
      //    (and whose previous packet has fully left) locks its output.
      for (unsigned iv = 0; iv < kPorts * kVCs; ++iv) {
        VcState& vs = vcs_[iv];
        if (vs.route < 0 && !vs.fifo.Empty() && vs.fifo.Peek().first) {
          CRAFT_ASSERT(!vs.pending_routes.empty(),
                       full_name() << ": head flit without pending route");
          vs.route = static_cast<int>(vs.pending_routes.front());
          vs.pending_routes.pop_front();
        }
      }
      // 2) Switch allocation + traversal: each output port picks one ready
      //    (input, vc) and forwards one flit on that VC's link channel.
      //    Wormhole invariant: an output VC is locked to one upstream
      //    (input, vc) from head to tail, so packets never interleave
      //    flits WITHIN a VC (packets on different VCs of the same port
      //    do interleave — that is the point of VCs).
      for (unsigned o = 0; o < kPorts; ++o) {
        std::uint64_t req = 0;
        for (unsigned i = 0; i < kPorts; ++i) {
          for (unsigned v = 0; v < kVCs; ++v) {
            const unsigned iv = VcIndex(i, v);
            VcState& vs = vcs_[iv];
            if (vs.fifo.Empty() || vs.route != static_cast<int>(o) ||
                !out[o][v].bound()) {
              continue;
            }
            const int owner = out_vc_owner_[VcIndex(o, v)];
            if (owner == static_cast<int>(iv) || owner < 0) {
              req |= (1ull << iv);
            }
          }
        }
        const int winner = arbiters_[o].PickIndex(req);
        if (winner < 0) continue;
        VcState& vs = vcs_[static_cast<unsigned>(winner)];
        const unsigned v = static_cast<unsigned>(winner) % kVCs;
        // The link push happens on Peek() BEFORE the Pop(): prime the trace
        // context with the head flit's span so the link channel extends it.
        vs.fifo.PrimeTraceContext();
        if (out[o][v].PushNB(vs.fifo.Peek())) {
          const Flit f = vs.fifo.Pop();
          ++flits_forwarded_;
          int& owner = out_vc_owner_[VcIndex(o, v)];
          if (owner < 0) {
            CRAFT_ASSERT(f.first, full_name()
                                      << ": output VC acquired by a body flit");
            owner = winner;
          }
          if (f.last) {
            owner = -1;      // tail releases the output VC
            vs.route = -1;   // and the input VC's route lock
          }
        }
      }
      // 3) Input acceptance: per-VC, gated only by that VC's FIFO space —
      //    no shared holding register, so no cross-VC head-of-line blocking.
      for (unsigned i = 0; i < kPorts; ++i) {
        for (unsigned v = 0; v < kVCs; ++v) {
          VcState& vs = vcs_[VcIndex(i, v)];
          if (!in[i][v].bound() || vs.fifo.Full()) continue;
          Flit f;
          if (in[i][v].PopNB(f)) {
            if (f.first) {
              const unsigned o = route_(f.dest);
              CRAFT_ASSERT(o < kPorts, full_name() << ": route OOB port " << o);
              vs.pending_routes.push_back(o);
            }
            f.vc = static_cast<std::uint8_t>(v);
            vs.fifo.Push(f);
          }
        }
      }
      wait();
    }
  }

  RouteFn route_;
  std::array<VcState, kPorts * kVCs> vcs_;
  std::array<int, kPorts * kVCs> out_vc_owner_ = MinusOnes();
  std::vector<Arbiter> arbiters_;
  std::uint64_t flits_forwarded_ = 0;

  static std::array<int, kPorts * kVCs> MinusOnes() {
    std::array<int, kPorts * kVCs> a;
    a.fill(-1);
    return a;
  }
};

}  // namespace craft::matchlib
