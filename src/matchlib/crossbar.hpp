// MatchLib Crossbar: N-to-N switch with configurable bitwidths (paper
// Table 2), including BOTH C++ coding styles from the §2.4 case study.
//
// The two functions below compute the same permutation, but HLS elaborates
// them very differently:
//
//  * src-loop: `out[dst[src]] = in[src]` — multiple inputs may target the
//    same output, so HLS must build priority decoders in front of every
//    output mux (later src wins), creating a dependency path from all
//    dst[src] signals to all outputs. The paper measured a 25% area penalty
//    for this style at 32 lanes x 32 bit.
//
//  * dst-loop: `out[dst] = in[src[dst]]` — each output is a plain N-to-1
//    mux controlled only by its own select, with no cross-output priority
//    logic. This is the MatchLib-encapsulated, QoR-friendly style.
//
// Functionally both are exercised here; the *hardware cost* difference is
// reproduced by the HLS model (src/hls) and bench/crossbar_qor.
#pragma once

#include <cstddef>
#include <vector>

#include "kernel/report.hpp"

namespace craft::matchlib {

/// src-loop style: dst[src] gives the output each input routes to. If two
/// inputs target the same output, the higher src index wins (priority),
/// matching the RTL HLS generates for this code.
template <typename T>
std::vector<T> CrossbarSrcLoop(const std::vector<T>& in, const std::vector<std::size_t>& dst) {
  CRAFT_ASSERT(in.size() == dst.size(), "crossbar size mismatch");
  std::vector<T> out(in.size(), T{});
  for (std::size_t src = 0; src < in.size(); ++src) {
    CRAFT_ASSERT(dst[src] < out.size(), "crossbar dst OOB");
    out[dst[src]] = in[src];
  }
  return out;
}

/// dst-loop style: src[dst] gives the input each output routes from.
template <typename T>
std::vector<T> CrossbarDstLoop(const std::vector<T>& in, const std::vector<std::size_t>& src) {
  CRAFT_ASSERT(in.size() == src.size(), "crossbar size mismatch");
  std::vector<T> out(in.size(), T{});
  for (std::size_t dst = 0; dst < out.size(); ++dst) {
    CRAFT_ASSERT(src[dst] < in.size(), "crossbar src OOB");
    out[dst] = in[src[dst]];
  }
  return out;
}

/// Inverts a permutation expressed as dst-of-src into src-of-dst, so the
/// same routing can be fed to either implementation. `dst` must be a
/// permutation (no output conflicts).
inline std::vector<std::size_t> InvertPermutation(const std::vector<std::size_t>& dst) {
  std::vector<std::size_t> src(dst.size(), dst.size());
  for (std::size_t s = 0; s < dst.size(); ++s) {
    CRAFT_ASSERT(dst[s] < dst.size(), "permutation entry OOB");
    CRAFT_ASSERT(src[dst[s]] == dst.size(), "permutation has output conflict");
    src[dst[s]] = s;
  }
  return src;
}

}  // namespace craft::matchlib
