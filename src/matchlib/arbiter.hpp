// MatchLib Arbiter: 1-out-of-N round-robin selector (paper Table 2).
//
// "The arbiter includes state for storing priorities and a pick method for
// selecting among its inputs and updating its state." Requests and grants
// are one-hot bit masks, exactly as the synthesizable component presents
// them to HLS.
#pragma once

#include <cstdint>

#include "kernel/report.hpp"

namespace craft::matchlib {

/// Round-robin arbiter over up to 64 requesters.
class Arbiter {
 public:
  explicit Arbiter(unsigned n) : n_(n) {
    CRAFT_ASSERT(n >= 1 && n <= 64, "Arbiter supports 1..64 requesters");
  }

  unsigned size() const { return n_; }

  /// Selects one requester from the `req` mask (bit i = requester i),
  /// rotating priority so the winner becomes lowest priority next time.
  /// Returns a one-hot grant mask, or 0 if no requests.
  std::uint64_t Pick(std::uint64_t req) {
    if (req == 0) return 0;
    for (unsigned offset = 0; offset < n_; ++offset) {
      const unsigned idx = (next_ + offset) % n_;
      if (req & (1ull << idx)) {
        next_ = (idx + 1) % n_;
        return 1ull << idx;
      }
    }
    return 0;
  }

  /// Pick and return the granted index (-1 if none). Convenience overlay.
  int PickIndex(std::uint64_t req) {
    const std::uint64_t g = Pick(req);
    if (g == 0) return -1;
    int idx = 0;
    while (!(g & (1ull << idx))) ++idx;
    return idx;
  }

  /// Current priority pointer (index that wins ties next), for inspection.
  unsigned priority() const { return next_; }

  void Reset() { next_ = 0; }

 private:
  unsigned n_;
  unsigned next_ = 0;
};

}  // namespace craft::matchlib
