// Common word-granular memory request/response messages, shared by the
// Scratchpad and Cache modules, the AXI bridges, and the SoC global memory.
#pragma once

#include <cstdint>

#include "kernel/bits.hpp"

namespace craft::matchlib {

struct MemReq {
  bool is_write = false;
  std::uint32_t addr = 0;   ///< word address
  std::uint64_t wdata = 0;  ///< payload for writes
  std::uint8_t id = 0;      ///< requester tag, echoed in the response

  bool operator==(const MemReq&) const = default;
};

struct MemResp {
  bool is_write_ack = false;
  std::uint64_t rdata = 0;
  std::uint8_t id = 0;

  bool operator==(const MemResp&) const = default;
};

}  // namespace craft::matchlib

namespace craft {

template <>
struct Marshal<matchlib::MemReq> {
  static constexpr unsigned kWidth = 1 + 32 + 64 + 8;
  static void Write(BitStream& s, const matchlib::MemReq& m) {
    s.PutBits(m.is_write, 1);
    s.PutBits(m.addr, 32);
    s.PutBits(m.wdata, 64);
    s.PutBits(m.id, 8);
  }
  static matchlib::MemReq Read(BitStream& s) {
    matchlib::MemReq m;
    m.is_write = s.GetBits(1);
    m.addr = static_cast<std::uint32_t>(s.GetBits(32));
    m.wdata = s.GetBits(64);
    m.id = static_cast<std::uint8_t>(s.GetBits(8));
    return m;
  }
};

template <>
struct Marshal<matchlib::MemResp> {
  static constexpr unsigned kWidth = 1 + 64 + 8;
  static void Write(BitStream& s, const matchlib::MemResp& m) {
    s.PutBits(m.is_write_ack, 1);
    s.PutBits(m.rdata, 64);
    s.PutBits(m.id, 8);
  }
  static matchlib::MemResp Read(BitStream& s) {
    matchlib::MemResp m;
    m.is_write_ack = s.GetBits(1);
    m.rdata = s.GetBits(64);
    m.id = static_cast<std::uint8_t>(s.GetBits(8));
    return m;
  }
};

}  // namespace craft
