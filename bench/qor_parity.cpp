// §2.2 QoR study: "preliminary experiments across a range of datapath
// modules and small functional units show that comparable QoR (+-10%) can
// be achieved through appropriate code optimizations and design
// constraints."
//
// Each row schedules a MatchLib-style C++ design through the HLS model and
// compares its combinational area against the hand-optimized-RTL reference.
#include <cmath>
#include <cstdio>

#include "hls/designs.hpp"
#include "hls/power_model.hpp"
#include "hls/qor.hpp"

int main() {
  using namespace craft::hls;
  AreaModel model;
  std::printf("QoR parity: HLS-generated vs hand-optimized RTL (NAND2-eq gates)\n");
  std::printf("(paper: +-10%% across datapath modules and small functional units)\n\n");
  std::printf("%-24s %12s %12s %10s\n", "module", "HLS gates", "hand RTL", "delta");
  bool all_within = true;
  for (const QorComparison& c : RunQorStudy(model)) {
    std::printf("%-24s %12.0f %12.0f %+9.1f%%\n", c.name.c_str(), c.hls_gates,
                c.hand_rtl_gates, 100.0 * c.delta());
    all_within = all_within && std::abs(c.delta()) <= 0.10;
  }
  std::printf("\nall modules within +-10%%: %s\n", all_within ? "yes" : "NO");

  // Fig. 1's third metric: power analysis over the same scheduled designs
  // (1.1 GHz signoff clock, §4).
  PowerModel power;
  std::printf("\nPower analysis @ 1100 MHz (flow output: performance/power/area)\n");
  std::printf("%-24s %10s %10s %10s %10s\n", "module", "dyn mW", "clk mW", "leak mW",
              "total mW");
  for (const auto& build :
       {BuildMac(16), BuildFir(8, 16), BuildDotProduct(4, 32), BuildAlu(32)}) {
    const ScheduleResult r = Schedule(build, model);
    const PowerReport p = power.Analyze(r, 1100.0);
    std::printf("%-24s %10.3f %10.3f %10.3f %10.3f\n", build.name().c_str(),
                p.dynamic_mw, p.clock_mw, p.leakage_mw, p.total_mw());
  }
  return 0;
}
