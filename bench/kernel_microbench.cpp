// google-benchmark microbenchmarks of the simulation substrate: raw kernel
// event throughput, channel transfer rates in both Connections models, and
// MatchLib component hot paths. These quantify the mechanisms behind the
// Fig. 6 wall-clock gap.
#include <benchmark/benchmark.h>

#include <memory>

#include "connections/connections.hpp"
#include "kernel/kernel.hpp"
#include "matchlib/arbiter.hpp"
#include "matchlib/arbitrated_crossbar.hpp"
#include "matchlib/fifo.hpp"
#include "matchlib/float.hpp"

namespace craft {
namespace {

using namespace craft::literals;

void BM_FiberSwitch(benchmark::State& state) {
  Fiber f([] {
    for (;;) Fiber::Suspend();
  });
  for (auto _ : state) f.resume();
}
BENCHMARK(BM_FiberSwitch);

void BM_ClockOnlySimulation(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    Clock clk(sim, "clk", 1_ns);
    state.ResumeTiming();
    sim.Run(10_us);  // 10k cycles
  }
}
BENCHMARK(BM_ClockOnlySimulation);

// kStats compares the telemetry overhead: the disabled configuration must
// stay within noise (<5%) of the pre-stats baseline — the registry hands out
// nullptr and every site is one never-taken branch — while the enabled
// configuration pays for counter updates and per-dispatch wall clocks.
template <SimMode kMode, bool kStats = false>
void BM_ChannelTransfers(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    sim.set_mode(kMode);
    if (kStats) sim.stats().Enable();
    Clock clk(sim, "clk", 1_ns);
    Module top(sim, "top");
    connections::Buffer<int> ch(top, "ch", clk, 4);
    struct Tb : Module {
      Tb(Module& p, Clock& clk, connections::Buffer<int>& ch) : Module(p, "tb") {
        Thread("prod", clk, [&ch] {
          for (int i = 0; i < 2000; ++i) ch.Push(i);
        });
        Thread("cons", clk, [&ch] {
          for (int i = 0; i < 2000; ++i) benchmark::DoNotOptimize(ch.Pop());
          Simulator::Current().Stop();
        });
      }
    } tb(top, clk, ch);
    state.ResumeTiming();
    sim.Run(100_us);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ChannelTransfers<SimMode::kSimAccurate>)->Name("BM_ChannelTransfers/sim_accurate");
BENCHMARK(BM_ChannelTransfers<SimMode::kSignalAccurate>)
    ->Name("BM_ChannelTransfers/signal_accurate");
BENCHMARK(BM_ChannelTransfers<SimMode::kSimAccurate, true>)
    ->Name("BM_ChannelTransfers/sim_accurate_stats");
BENCHMARK(BM_ChannelTransfers<SimMode::kSignalAccurate, true>)
    ->Name("BM_ChannelTransfers/signal_accurate_stats");

void BM_ArbiterPick(benchmark::State& state) {
  matchlib::Arbiter arb(16);
  Rng rng(3);
  std::uint64_t req = rng.Next() & 0xFFFF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arb.Pick(req | 1));
    req = (req * 2862933555777941757ull) + 3037000493ull;
    req &= 0xFFFF;
  }
}
BENCHMARK(BM_ArbiterPick);

void BM_ArbitratedCrossbarCycle(benchmark::State& state) {
  matchlib::ArbitratedCrossbar<std::uint32_t, 8, 8, 4> xbar;
  Rng rng(5);
  std::uint32_t v = 0;
  for (auto _ : state) {
    for (unsigned i = 0; i < 8; ++i) {
      if (xbar.CanAccept(i)) xbar.Push(i, v++, rng.NextBelow(8));
    }
    benchmark::DoNotOptimize(xbar.Arbitrate());
  }
}
BENCHMARK(BM_ArbitratedCrossbarCycle);

void BM_SoftFloatMulAdd(benchmark::State& state) {
  using matchlib::Float32;
  Float32 a = Float32::FromFloat(1.25f);
  Float32 b = Float32::FromFloat(0.75f);
  Float32 c = Float32::FromFloat(0.001f);
  for (auto _ : state) {
    c = FpMulAdd(a, b, c);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SoftFloatMulAdd);

}  // namespace
}  // namespace craft

BENCHMARK_MAIN();
