// google-benchmark microbenchmarks of the simulation substrate: raw kernel
// event throughput, channel transfer rates in both Connections models, and
// MatchLib component hot paths. These quantify the mechanisms behind the
// Fig. 6 wall-clock gap.
#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "connections/connections.hpp"
#include "kernel/kernel.hpp"
#include "matchlib/arbiter.hpp"
#include "matchlib/arbitrated_crossbar.hpp"
#include "matchlib/fifo.hpp"
#include "matchlib/float.hpp"

namespace craft {
namespace {

using namespace craft::literals;

// The overhead comparisons below difference pairs of registrations that run
// minutes apart, so single-shot timings confound instrumentation cost with
// host load drift. Each compared benchmark runs 3 repetitions and reports
// through its minimum: noise only ever adds time, so the min is the robust
// estimator of the true cost on a loaded host.
void RepeatedMin(benchmark::internal::Benchmark* b) {
  b->Repetitions(3)->ReportAggregatesOnly(true)->ComputeStatistics(
      "min", [](const std::vector<double>& v) {
        return *std::min_element(v.begin(), v.end());
      });
}

void BM_FiberSwitch(benchmark::State& state) {
  Fiber f([] {
    for (;;) Fiber::Suspend();
  });
  for (auto _ : state) f.resume();
}
BENCHMARK(BM_FiberSwitch);

void BM_ClockOnlySimulation(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    Clock clk(sim, "clk", 1_ns);
    state.ResumeTiming();
    sim.Run(10_us);  // 10k cycles
  }
}
BENCHMARK(BM_ClockOnlySimulation);

// kStats / kTrace compare the instrumentation overhead: the disabled
// configuration must stay within noise (<5%) of the uninstrumented baseline
// — both registries hand out nullptr and every site is one never-taken
// branch — while the enabled configurations pay for counter updates,
// per-dispatch wall clocks, and span-event recording respectively. The
// "rerun" registration repeats the disabled configuration verbatim so the
// report can show what a 0% overhead actually measures as on this host
// (run-to-run noise), which is the honest bound on the disabled cost.
// kPulsePeriodPs > 0 additionally enables the craft-pulse sampler at that
// period; with it at 0 (every other configuration) the pulse registry stays
// disabled, so the rerun noise floor also bounds pulse's disabled cost (its
// scheduler hook is one never-taken compare, baked into the baseline).
template <SimMode kMode, bool kStats = false, bool kTrace = false,
          std::uint64_t kPulsePeriodPs = 0, bool kCover = false>
void BM_ChannelTransfers(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    sim.set_mode(kMode);
    if (kStats) sim.stats().Enable();
    if (kTrace) sim.trace_events().Enable();
    if constexpr (kCover) sim.cover().Enable();
    if constexpr (kPulsePeriodPs > 0) {
      PulseConfig pcfg;
      pcfg.period_ps = kPulsePeriodPs;
      pcfg.throughput_windows = 0;
      sim.pulse().Enable(pcfg);
    }
    Clock clk(sim, "clk", 1_ns);
    Module top(sim, "top");
    connections::Buffer<int> ch(top, "ch", clk, 4);
    struct Tb : Module {
      Tb(Module& p, Clock& clk, connections::Buffer<int>& ch) : Module(p, "tb") {
        Thread("prod", clk, [&ch] {
          for (int i = 0; i < 2000; ++i) ch.Push(i);
        });
        Thread("cons", clk, [&ch] {
          for (int i = 0; i < 2000; ++i) benchmark::DoNotOptimize(ch.Pop());
          Simulator::Current().Stop();
        });
      }
    } tb(top, clk, ch);
    state.ResumeTiming();
    sim.Run(100_us);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ChannelTransfers<SimMode::kSimAccurate>)->Name("BM_ChannelTransfers/sim_accurate")->Apply(RepeatedMin);
BENCHMARK(BM_ChannelTransfers<SimMode::kSignalAccurate>)
    ->Name("BM_ChannelTransfers/signal_accurate")->Apply(RepeatedMin);
BENCHMARK(BM_ChannelTransfers<SimMode::kSimAccurate, true>)
    ->Name("BM_ChannelTransfers/sim_accurate_stats")->Apply(RepeatedMin);
BENCHMARK(BM_ChannelTransfers<SimMode::kSignalAccurate, true>)
    ->Name("BM_ChannelTransfers/signal_accurate_stats")->Apply(RepeatedMin);
BENCHMARK(BM_ChannelTransfers<SimMode::kSimAccurate, false, true>)
    ->Name("BM_ChannelTransfers/sim_accurate_trace")->Apply(RepeatedMin);
BENCHMARK(BM_ChannelTransfers<SimMode::kSignalAccurate, false, true>)
    ->Name("BM_ChannelTransfers/signal_accurate_trace")->Apply(RepeatedMin);
// craft-pulse sampling cost at a 1k-cycle and a 10k-cycle period (1 ns
// clock). The 10k-cycle figure is the deployment guidance in README.md and
// must stay under 2% (pulse samples piggyback on stats, so these enable
// both registries; overhead is reported relative to stats-only).
BENCHMARK(BM_ChannelTransfers<SimMode::kSimAccurate, true, false, 1'000'000>)
    ->Name("BM_ChannelTransfers/sim_accurate_pulse1k")->Apply(RepeatedMin);
BENCHMARK(BM_ChannelTransfers<SimMode::kSimAccurate, true, false, 10'000'000>)
    ->Name("BM_ChannelTransfers/sim_accurate_pulse10k")->Apply(RepeatedMin);
// craft-cover occupancy-band / framing bin cost. Cover piggybacks on stats
// (Enable() implies the stats registry), so its marginal overhead is
// measured against the stats-enabled configuration of the same mode.
BENCHMARK(BM_ChannelTransfers<SimMode::kSimAccurate, true, false, 0, true>)
    ->Name("BM_ChannelTransfers/sim_accurate_cover")->Apply(RepeatedMin);
BENCHMARK(BM_ChannelTransfers<SimMode::kSignalAccurate, true, false, 0, true>)
    ->Name("BM_ChannelTransfers/signal_accurate_cover")->Apply(RepeatedMin);
// Identical to the baseline registration: with the cover registry disabled
// every RegisterChannel site returns nullptr, so this delta is the direct
// measurement of cover's disabled cost (a never-taken branch per hook).
BENCHMARK(BM_ChannelTransfers<SimMode::kSimAccurate>)
    ->Name("BM_ChannelTransfers/sim_accurate_cover_disabled")->Apply(RepeatedMin);
// Identical to the baseline registration: its delta against the baseline is
// pure run-to-run noise, which bounds the cost of the disabled registries.
BENCHMARK(BM_ChannelTransfers<SimMode::kSimAccurate>)
    ->Name("BM_ChannelTransfers/sim_accurate_rerun")->Apply(RepeatedMin);

void BM_ArbiterPick(benchmark::State& state) {
  matchlib::Arbiter arb(16);
  Rng rng(3);
  std::uint64_t req = rng.Next() & 0xFFFF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arb.Pick(req | 1));
    req = (req * 2862933555777941757ull) + 3037000493ull;
    req &= 0xFFFF;
  }
}
BENCHMARK(BM_ArbiterPick);

void BM_ArbitratedCrossbarCycle(benchmark::State& state) {
  matchlib::ArbitratedCrossbar<std::uint32_t, 8, 8, 4> xbar;
  Rng rng(5);
  std::uint32_t v = 0;
  for (auto _ : state) {
    for (unsigned i = 0; i < 8; ++i) {
      if (xbar.CanAccept(i)) xbar.Push(i, v++, rng.NextBelow(8));
    }
    benchmark::DoNotOptimize(xbar.Arbitrate());
  }
}
BENCHMARK(BM_ArbitratedCrossbarCycle);

void BM_SoftFloatMulAdd(benchmark::State& state) {
  using matchlib::Float32;
  Float32 a = Float32::FromFloat(1.25f);
  Float32 b = Float32::FromFloat(0.75f);
  Float32 c = Float32::FromFloat(0.001f);
  for (auto _ : state) {
    c = FpMulAdd(a, b, c);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SoftFloatMulAdd);

// Captures per-benchmark real time so main() can derive instrumentation
// overhead percentages after the normal console report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      if (r.run_type == Run::RT_Aggregate) {
        // Repeated benchmarks report through their min (see RepeatedMin): it
        // is stored under the base name so the overhead math below is
        // insensitive to scheduling spikes on a loaded host.
        if (r.aggregate_name == "min") {
          std::string name = r.run_name.str();
          const auto reps = name.find("/repeats:");
          if (reps != std::string::npos) name.erase(reps);
          ns_per_iter_[name] = r.GetAdjustedRealTime();
        }
      } else {
        ns_per_iter_[r.benchmark_name()] = r.GetAdjustedRealTime();
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  double Get(const std::string& name) const {
    auto it = ns_per_iter_.find(name);
    return it == ns_per_iter_.end() ? 0.0 : it->second;
  }

 private:
  std::map<std::string, double> ns_per_iter_;
};

}  // namespace
}  // namespace craft

int main(int argc, char** argv) {
  // Random interleaving shuffles repetitions across the whole suite, so the
  // min-of-3 aggregates differenced below sample the same load epochs;
  // without it each compared pair runs minutes apart and the delta confounds
  // instrumentation cost with host load drift.
  std::vector<char*> args;
  args.push_back(argv[0]);
  static char kInterleave[] = "--benchmark_enable_random_interleaving=true";
  args.push_back(kInterleave);
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int eff_argc = static_cast<int>(args.size());
  benchmark::Initialize(&eff_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(eff_argc, args.data())) return 1;
  craft::CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // Overhead report for the channel-transfer benchmark, the one path where
  // every instrumentation hook (channel stats + trace spans) is on the
  // critical loop. Percentages are relative to the uninstrumented baseline
  // of the same Connections mode; the rerun delta shows the measurement
  // noise floor that the "disabled" configurations must stay inside.
  const auto pct = [&](const std::string& num, const std::string& den) {
    const double b = reporter.Get(den), v = reporter.Get(num);
    return b > 0.0 && v > 0.0 ? (v - b) / b * 100.0 : 0.0;
  };
  const double noise = pct("BM_ChannelTransfers/sim_accurate_rerun",
                           "BM_ChannelTransfers/sim_accurate");
  const double sim_stats = pct("BM_ChannelTransfers/sim_accurate_stats",
                               "BM_ChannelTransfers/sim_accurate");
  const double sig_stats = pct("BM_ChannelTransfers/signal_accurate_stats",
                               "BM_ChannelTransfers/signal_accurate");
  const double sim_trace = pct("BM_ChannelTransfers/sim_accurate_trace",
                               "BM_ChannelTransfers/sim_accurate");
  const double sig_trace = pct("BM_ChannelTransfers/signal_accurate_trace",
                               "BM_ChannelTransfers/signal_accurate");
  // Pulse sampling rides on top of stats, so its marginal cost is measured
  // against the stats-enabled configuration.
  const double pulse_1k = pct("BM_ChannelTransfers/sim_accurate_pulse1k",
                              "BM_ChannelTransfers/sim_accurate_stats");
  const double pulse_10k = pct("BM_ChannelTransfers/sim_accurate_pulse10k",
                               "BM_ChannelTransfers/sim_accurate_stats");
  // craft-cover: marginal cost over stats (enabled) and the direct
  // disabled-cost measurement against the baseline.
  const double sim_cover = pct("BM_ChannelTransfers/sim_accurate_cover",
                               "BM_ChannelTransfers/sim_accurate_stats");
  const double sig_cover = pct("BM_ChannelTransfers/signal_accurate_cover",
                               "BM_ChannelTransfers/signal_accurate_stats");
  const double cover_disabled = pct("BM_ChannelTransfers/sim_accurate_cover_disabled",
                                    "BM_ChannelTransfers/sim_accurate");
  // With all three registries disabled this binary IS the baseline, so the
  // disabled overhead (stats, trace, and pulse's scheduler compare alike)
  // manifests as the rerun delta (pure noise). |noise| <= 5% is the
  // acceptance bound for instrumentation-disabled overhead.
  const bool disabled_ok = std::fabs(noise) <= 5.0;
  // Deployment guidance bound: sampling every >= 10k cycles must stay under
  // 2% (widened to the measured noise floor when a noisy host exceeds it).
  const bool pulse_10k_ok = pulse_10k <= std::max(2.0, std::fabs(noise) + 1.0);
  // Cover bounds: disabled must stay within 0.5% (widened to the measured
  // noise floor on noisy hosts — the honest lower limit of what this harness
  // can resolve); enabled must stay within 5% of the stats configuration.
  const bool cover_disabled_ok =
      std::fabs(cover_disabled) <= std::max(0.5, std::fabs(noise) + 0.5);
  const bool cover_enabled_ok = sim_cover <= std::max(5.0, std::fabs(noise) + 1.0);

  std::printf("\n--- instrumentation overhead (BM_ChannelTransfers) ---\n");
  std::printf("disabled rerun delta (noise floor):      %+6.2f%%  [tracing/stats/pulse"
              " disabled overhead, bound <= 5%%: %s]\n",
              noise, disabled_ok ? "PASS" : "FAIL");
  std::printf("stats enabled, sim-accurate:             %+6.2f%%\n", sim_stats);
  std::printf("stats enabled, signal-accurate:          %+6.2f%%\n", sig_stats);
  std::printf("trace enabled, sim-accurate:             %+6.2f%%\n", sim_trace);
  std::printf("trace enabled, signal-accurate:          %+6.2f%%\n", sig_trace);
  std::printf("pulse @ 1k-cycle period (vs stats):      %+6.2f%%\n", pulse_1k);
  std::printf("pulse @ 10k-cycle period (vs stats):     %+6.2f%%  [bound <= 2%%: %s]\n",
              pulse_10k, pulse_10k_ok ? "PASS" : "FAIL");
  std::printf("cover disabled (vs baseline):            %+6.2f%%  [bound <= 0.5%%: %s]\n",
              cover_disabled, cover_disabled_ok ? "PASS" : "FAIL");
  std::printf("cover enabled, sim-accurate (vs stats):  %+6.2f%%  [bound <= 5%%: %s]\n",
              sim_cover, cover_enabled_ok ? "PASS" : "FAIL");
  std::printf("cover enabled, signal-accurate (vs stats): %+6.2f%%\n", sig_cover);

  const double base_ns = reporter.Get("BM_ChannelTransfers/sim_accurate");
  namespace bj = craft::bench;
  bj::EmitJson(
      "kernel_microbench",
      {bj::Num("channel_transfers_sim_accurate_ns_per_iter", base_ns),
       bj::Num("channel_transfers_signal_accurate_ns_per_iter",
               reporter.Get("BM_ChannelTransfers/signal_accurate")),
       bj::Num("transfers_per_sec_sim_accurate",
               base_ns > 0.0 ? 2000.0 / (base_ns * 1e-9) : 0.0),
       bj::Num("disabled_overhead_noise_pct", noise),
       bj::Bool("disabled_overhead_within_5pct", disabled_ok),
       bj::Num("stats_enabled_overhead_pct_sim_accurate", sim_stats),
       bj::Num("stats_enabled_overhead_pct_signal_accurate", sig_stats),
       bj::Num("trace_enabled_overhead_pct_sim_accurate", sim_trace),
       bj::Num("trace_enabled_overhead_pct_signal_accurate", sig_trace),
       bj::Num("pulse_1k_cycle_overhead_pct", pulse_1k),
       bj::Num("pulse_10k_cycle_overhead_pct", pulse_10k),
       bj::Bool("pulse_10k_within_2pct", pulse_10k_ok),
       bj::Num("cover_disabled_overhead_pct", cover_disabled),
       bj::Bool("cover_disabled_within_half_pct", cover_disabled_ok),
       bj::Num("cover_enabled_overhead_pct_sim_accurate", sim_cover),
       bj::Num("cover_enabled_overhead_pct_signal_accurate", sig_cover),
       bj::Bool("cover_enabled_within_5pct", cover_enabled_ok),
       bj::Num("fiber_switch_ns", reporter.Get("BM_FiberSwitch")),
       bj::Num("softfloat_muladd_ns", reporter.Get("BM_SoftFloatMulAdd"))});
  benchmark::Shutdown();
  return disabled_ok && pulse_10k_ok && cover_disabled_ok && cover_enabled_ok
             ? 0
             : 1;
}
