// Shared helper for the ablation benches: alongside the human-readable
// stdout tables, each bench writes a small machine-readable result document
// BENCH_<name>.json (schema craft-bench-v1) so CI can archive throughput,
// wall-time, and instrumentation-overhead trends across commits.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace craft::bench {

/// One result metric. `value` is a pre-rendered JSON value (use the Num/Str
/// helpers below); keys are emitted in insertion order.
struct Metric {
  std::string key;
  std::string value;
};

inline Metric Num(const std::string& key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return Metric{key, buf};
}

inline Metric Num(const std::string& key, std::uint64_t v) {
  return Metric{key, std::to_string(v)};
}

inline Metric Num(const std::string& key, unsigned v) {
  return Num(key, static_cast<std::uint64_t>(v));
}

inline Metric Num(const std::string& key, int v) {
  return Num(key, static_cast<double>(v));
}

inline Metric Bool(const std::string& key, bool v) {
  return Metric{key, v ? "true" : "false"};
}

inline Metric Str(const std::string& key, const std::string& v) {
  return Metric{key, "\"" + json::Escape(v) + "\""};
}

/// Writes BENCH_<bench_name>.json in the current working directory and
/// reports the path on stdout. Returns false (after a stderr note) if the
/// file cannot be opened; benches treat that as non-fatal so a read-only
/// CWD does not fail the run.
inline bool EmitJson(const std::string& bench_name, const std::vector<Metric>& metrics) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "bench: cannot open %s for writing, skipping JSON emit\n",
                 path.c_str());
    return false;
  }
  out << "{\n  \"schema\": \"craft-bench-v1\",\n  \"bench\": \""
      << json::Escape(bench_name) << "\",\n  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out << "    \"" << json::Escape(metrics[i].key) << "\": " << metrics[i].value
        << (i + 1 < metrics.size() ? ",\n" : "\n");
  }
  out << "  }\n}\n";
  out.close();
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace craft::bench
