// Figure 6: "Performance accuracy of SoC-level tests" — for six SoC-level
// workloads on the prototype SoC, the wall-clock speedup of the sim-accurate
// SystemC model over RTL simulation (Y axis, paper: 20-30x) against the
// relative elapsed-cycle error (X axis, paper: < 3%).
//
// "RTL" here is the RTL-cosim emulation mode: the same SoC with (a) the
// per-cycle signal-evaluation load of a netlist simulator and (b) the
// pipeline-drain latencies HLS inserts (the cycle-error source the paper
// identifies: "unit pipeline latencies not included in the SystemC models").
#include <chrono>
#include <cstdio>

#include "soc/workloads.hpp"

namespace craft::soc {
namespace {

using namespace craft::literals;
using Clk = std::chrono::steady_clock;

struct Measurement {
  std::uint64_t cycles = 0;
  double wall_seconds = 0.0;
};

Measurement Measure(const Workload& w, bool rtl_cosim) {
  Simulator sim;
  SocConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.gals = true;
  cfg.rtl_cosim = rtl_cosim;
  SocTop soc(sim, cfg);
  const auto t0 = Clk::now();
  const WorkloadRun r = RunWorkload(soc, w, 500_ms);
  const auto t1 = Clk::now();
  CRAFT_ASSERT(r.ok, "fig6 workload " << r.name << " failed: " << r.error);
  return {r.cycles, std::chrono::duration<double>(t1 - t0).count()};
}

}  // namespace
}  // namespace craft::soc

int main() {
  using namespace craft::soc;
  std::printf("Figure 6: performance accuracy of SoC-level tests\n");
  std::printf("(paper: 20-30x wall-clock speedup at < 3%% elapsed-cycle error)\n\n");
  std::printf("%-10s %12s %12s %12s %12s %10s\n", "test", "fast cycles", "rtl cycles",
              "fast wall s", "rtl wall s", "speedup");
  double worst_err = 0.0, min_speedup = 1e9, max_speedup = 0.0;
  for (const Workload& w : SixSocTests()) {
    const Measurement fast = Measure(w, /*rtl_cosim=*/false);
    const Measurement rtl = Measure(w, /*rtl_cosim=*/true);
    const double speedup = rtl.wall_seconds / fast.wall_seconds;
    const double err = 100.0 *
                       (static_cast<double>(rtl.cycles) - static_cast<double>(fast.cycles)) /
                       static_cast<double>(rtl.cycles);
    std::printf("%-10s %12llu %12llu %12.4f %12.4f %9.1fx  cycle err %+.2f%%\n",
                w.name.c_str(), static_cast<unsigned long long>(fast.cycles),
                static_cast<unsigned long long>(rtl.cycles), fast.wall_seconds,
                rtl.wall_seconds, speedup, err);
    worst_err = std::max(worst_err, std::abs(err));
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
  }
  std::printf("\nspeedup range: %.1fx .. %.1fx   worst |cycle error|: %.2f%%\n",
              min_speedup, max_speedup, worst_err);
  return 0;
}
