// §2.3 verification-support study: stall injection "assists in quickly
// covering complex corner case scenarios that otherwise would require
// significant dedicated test development effort."
//
// Measures, as a function of stall probability, how many distinct channel
// timing interleavings (occupancy states observed per channel) a fixed
// workload exercises on the prototype SoC — and checks that results remain
// golden at every stall level (the latency-insensitive guarantee).
#include <cstdio>
#include <set>

#include "connections/channel_control.hpp"
#include "soc/workloads.hpp"

namespace craft::soc {
namespace {

using namespace craft::literals;

struct Outcome {
  bool ok = false;
  std::uint64_t cycles = 0;
  std::uint64_t transfers = 0;
};

Outcome Run(double stall_prob, std::uint64_t seed) {
  Simulator sim;
  SocConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.gals = false;
  SocTop soc(sim, cfg);
  const Workload w = SixSocTests()[0];  // vecmul exercises DMA + compute
  w.setup(soc);
  if (stall_prob > 0.0) {
    connections::ChannelControl::ApplyStallToAll(
        {.valid_stall_prob = stall_prob, .ready_stall_prob = 0.0, .seed = seed});
  }
  Outcome o;
  o.cycles = soc.RunCommands(w.commands(soc), 500_ms);
  std::string err;
  o.ok = w.check(soc, &err);
  o.transfers = connections::ChannelControl::TotalTransfers();
  return o;
}

}  // namespace
}  // namespace craft::soc

int main() {
  using namespace craft::soc;
  std::printf("Stall-injection study (vecmul on the prototype SoC)\n");
  std::printf("(paper: random stalls cover timing corner cases with zero design/"
              "testbench changes; LI design keeps results correct)\n\n");
  std::printf("%12s %10s %12s %12s %8s\n", "stall prob", "seed", "cycles",
              "transfers", "result");
  for (double p : {0.0, 0.1, 0.25, 0.5}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      const Outcome o = Run(p, seed);
      std::printf("%12.2f %10llu %12llu %12llu %8s\n", p, (unsigned long long)seed,
                  (unsigned long long)o.cycles, (unsigned long long)o.transfers,
                  o.ok ? "PASS" : "FAIL");
      if (p == 0.0) break;  // seed is irrelevant without stalls
    }
  }
  std::printf("\n(each (prob, seed) pair is a distinct timing universe; cycle-count "
              "spread shows the interleavings covered)\n");
  return 0;
}
