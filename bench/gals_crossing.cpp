// §3.1 pausible bisynchronous FIFO characterization: "low-latency,
// error-free clock domain crossings" across arbitrary frequency ratios,
// including jittering (supply-noise-tracking) GALS clocks.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "connections/connections.hpp"
#include "gals/gals.hpp"
#include "kernel/kernel.hpp"

namespace craft::gals {
namespace {

using namespace craft::literals;

struct Result {
  std::uint64_t transfers = 0;
  double latency_cycles = 0.0;
  double throughput = 0.0;  // tokens per consumer cycle
  std::uint64_t sync_waits = 0;    // craft-stats: grace-window wait cycles
  std::uint64_t pause_events = 0;  // craft-stats: modeled clock pauses
  double wall_seconds = 0.0;       // host time inside sim.Run
  bool ok = false;
};

Result RunCrossing(Time p_period, Time c_period, double noise, int count,
                   bool with_stats = true) {
  Simulator sim;
  if (with_stats) sim.stats().Enable();  // per-crossing synchronizer telemetry
  std::unique_ptr<Clock> pclk, cclk;
  if (noise > 0.0) {
    pclk = std::make_unique<LocalClockGenerator>(
        sim, "p", ClockGenConfig{.nominal_period = p_period, .noise_amplitude = noise,
                                 .seed = 21});
    cclk = std::make_unique<LocalClockGenerator>(
        sim, "c", ClockGenConfig{.nominal_period = c_period, .noise_amplitude = noise,
                                 .seed = 22});
  } else {
    pclk = std::make_unique<Clock>(sim, "p", p_period);
    cclk = std::make_unique<Clock>(sim, "c", c_period);
  }
  Module top(sim, "top");
  connections::Buffer<int> in_ch(top, "in", *pclk, 2);
  connections::Buffer<int> out_ch(top, "out", *cclk, 2);
  PausibleBisyncFifo<int, 4> fifo(top, "fifo", *pclk, *cclk);
  fifo.in(in_ch);
  fifo.out(out_ch);

  struct Tb : Module {
    Tb(Module& p, Clock& pclk, Clock& cclk, connections::Buffer<int>& in,
       connections::Buffer<int>& out, int count)
        : Module(p, "tb") {
      Thread("prod", pclk, [&in, count] {
        for (int i = 0; i < count; ++i) in.Push(i);
      });
      Thread("cons", cclk, [this, &out, &cclk, count] {
        const std::uint64_t start = cclk.cycle();
        for (int i = 0; i < count; ++i) {
          if (out.Pop() != i) {
            corrupt = true;
          }
        }
        elapsed = cclk.cycle() - start;
        Simulator::Current().Stop();
      });
    }
    bool corrupt = false;
    std::uint64_t elapsed = 0;
  } tb(top, *pclk, *cclk, in_ch, out_ch, count);

  const auto wall_start = std::chrono::steady_clock::now();
  sim.Run(1000_ms);
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;
  Result r;
  r.wall_seconds = wall.count();
  r.transfers = fifo.transfer_count();
  r.latency_cycles = fifo.mean_latency_cycles();
  r.throughput = tb.elapsed ? static_cast<double>(count) / tb.elapsed : 0.0;
  for (const auto& [name, x] : sim.stats().crossings()) {
    r.sync_waits += x.enq_sync_wait_cycles + x.deq_sync_wait_cycles;
    r.pause_events += x.enq_pause_events + x.deq_pause_events;
  }
  r.ok = !tb.corrupt && r.transfers == static_cast<std::uint64_t>(count);
  return r;
}

}  // namespace
}  // namespace craft::gals

int main() {
  using namespace craft::gals;
  constexpr int kCount = 2000;
  std::printf("Pausible bisynchronous FIFO: crossing characterization\n");
  std::printf("(paper: low-latency, error-free crossings for any frequency pair)\n\n");
  std::printf("%10s %10s %8s %10s %14s %14s %10s %8s %8s\n", "prod ps", "cons ps",
              "noise", "transfers", "mean lat (cyc)", "tokens/cycle", "sync wait",
              "pauses", "status");
  struct Case {
    craft::Time p, c;
    double noise;
  };
  for (const Case& cs : {Case{1000, 1000, 0.0}, Case{1000, 2000, 0.0},
                         Case{2000, 1000, 0.0}, Case{1000, 1370, 0.0},
                         Case{997, 1009, 0.0}, Case{250, 4000, 0.0},
                         Case{1000, 1000, 0.08}, Case{1000, 1500, 0.08}}) {
    const Result r = RunCrossing(cs.p, cs.c, cs.noise, kCount);
    std::printf("%10llu %10llu %8.2f %10llu %14.2f %14.3f %10llu %8llu %8s\n",
                static_cast<unsigned long long>(cs.p),
                static_cast<unsigned long long>(cs.c), cs.noise,
                static_cast<unsigned long long>(r.transfers), r.latency_cycles,
                r.throughput, static_cast<unsigned long long>(r.sync_waits),
                static_cast<unsigned long long>(r.pause_events),
                r.ok ? "OK" : "CORRUPT");
  }

  // Machine-readable summary for CI: the irrational-ratio case (1000/1370)
  // is the representative crossing; compare the same run with craft-stats
  // off to quantify the telemetry cost.
  const Result on = RunCrossing(1000, 1370, 0.0, kCount, true);
  const Result off = RunCrossing(1000, 1370, 0.0, kCount, false);
  const double stats_overhead_pct =
      off.wall_seconds > 0.0
          ? (on.wall_seconds - off.wall_seconds) / off.wall_seconds * 100.0
          : 0.0;
  std::printf("\n1000/1370 crossing: %llu transfers in %.4fs wall "
              "(stats-enabled overhead %+.1f%%)\n",
              static_cast<unsigned long long>(on.transfers), on.wall_seconds,
              stats_overhead_pct);
  namespace bj = craft::bench;
  bj::EmitJson("gals_crossing",
               {bj::Num("hw_threads", std::thread::hardware_concurrency()),
                bj::Num("prod_period_ps", std::uint64_t{1000}),
                bj::Num("cons_period_ps", std::uint64_t{1370}),
                bj::Num("transfers", on.transfers),
                bj::Num("tokens_per_consumer_cycle", on.throughput),
                bj::Num("mean_latency_cycles", on.latency_cycles),
                bj::Num("transfers_per_wall_sec",
                        on.wall_seconds > 0.0 ? on.transfers / on.wall_seconds : 0.0),
                bj::Num("wall_seconds_stats_on", on.wall_seconds),
                bj::Num("wall_seconds_stats_off", off.wall_seconds),
                bj::Num("stats_enabled_overhead_pct", stats_overhead_pct),
                bj::Bool("ok", on.ok && off.ok)});
  return on.ok && off.ok ? 0 : 1;
}
