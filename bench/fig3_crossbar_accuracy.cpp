// Figure 3: "Simulated SystemC cycles per transaction for an arbitrated
// crossbar with varying number of ports."
//
// The same MatchLib ArbitratedCrossbar is exercised three ways:
//  * RTL reference: a cycle-accurate harness drives the component directly,
//    one arbitration per clock — the behaviour HLS-generated RTL exhibits.
//  * sim-accurate: testbench threads talk to the DUT through Connections
//    ports in the sim-accurate model; all port operations of one loop
//    iteration overlap in one cycle, so elapsed cycles match RTL.
//  * signal-accurate: the same code with signal-accurate ports; every
//    non-blocking port operation burns a cycle (delayed valid/ready ops),
//    so cycles-per-transaction grows with the port count — the measurement
//    error the paper's sim-accurate model was built to eliminate.
#include <cstdio>
#include <memory>
#include <vector>

#include "connections/connections.hpp"
#include "kernel/kernel.hpp"
#include "matchlib/arbitrated_crossbar.hpp"

namespace craft {
namespace {

using namespace craft::literals;
using connections::Buffer;
using matchlib::ArbitratedCrossbar;

constexpr int kTxnsPerPort = 500;

/// RTL reference: direct cycle-by-cycle drive of the component.
template <unsigned kPorts>
double RunRtlReference() {
  ArbitratedCrossbar<std::uint32_t, kPorts, kPorts, 4> xbar;
  Rng rng(7);
  std::uint64_t cycles = 0;
  int sent = 0, received = 0;
  const int total = kTxnsPerPort * static_cast<int>(kPorts);
  while (received < total) {
    ++cycles;
    for (unsigned i = 0; i < kPorts && sent < total; ++i) {
      if (xbar.CanAccept(i)) {
        xbar.Push(i, static_cast<std::uint32_t>(sent), rng.NextBelow(kPorts));
        ++sent;
      }
    }
    const auto out = xbar.Arbitrate();
    for (unsigned o = 0; o < kPorts; ++o) received += out[o].has_value();
  }
  return static_cast<double>(cycles) * kPorts / total;
}

/// Connections harness: producer thread -> input channels -> DUT (input
/// stage + output stage threads, as HLS would pipeline them) -> output
/// channels -> consumer thread.
template <unsigned kPorts>
class Dut : public Module {
 public:
  Dut(Module& parent, Clock& clk, std::vector<std::unique_ptr<Buffer<std::uint32_t>>>& in,
      std::vector<std::unique_ptr<Buffer<std::uint32_t>>>& out)
      : Module(parent, "dut") {
    for (unsigned i = 0; i < kPorts; ++i) {
      in_[i](*in[i]);
      out_[i](*out[i]);
    }
    Thread("in_stage", clk, [this] {
      Rng rng(11);
      for (;;) {
        std::uint32_t v;
        for (unsigned i = 0; i < kPorts; ++i) {
          if (xbar_.CanAccept(i) && in_[i].PopNB(v)) {
            xbar_.Push(i, v, rng.NextBelow(kPorts));
          }
        }
        wait();
      }
    });
    Thread("out_stage", clk, [this] {
      for (;;) {
        const auto res = xbar_.Arbitrate();
        for (unsigned o = 0; o < kPorts; ++o) {
          if (res[o].has_value()) {
            // Output buffers are sized so this never drops (checked below).
            const bool ok = out_[o].PushNB(*res[o]);
            if (!ok) ++drops_;
          }
        }
        wait();
      }
    });
  }
  std::uint64_t drops() const { return drops_; }

 private:
  ArbitratedCrossbar<std::uint32_t, kPorts, kPorts, 4> xbar_;
  std::array<connections::In<std::uint32_t>, kPorts> in_;
  std::array<connections::Out<std::uint32_t>, kPorts> out_;
  std::uint64_t drops_ = 0;
};

template <unsigned kPorts>
double RunConnectionsHarness(SimMode mode) {
  Simulator sim;
  sim.set_mode(mode);
  Clock clk(sim, "clk", 1_ns);
  Module top(sim, "top");
  std::vector<std::unique_ptr<Buffer<std::uint32_t>>> in_ch, out_ch;
  for (unsigned i = 0; i < kPorts; ++i) {
    in_ch.push_back(std::make_unique<Buffer<std::uint32_t>>(
        top, "in" + std::to_string(i), clk, 4));
    out_ch.push_back(std::make_unique<Buffer<std::uint32_t>>(
        top, "out" + std::to_string(i), clk, 64));
  }
  Dut<kPorts> dut(top, clk, in_ch, out_ch);

  const int total = kTxnsPerPort * static_cast<int>(kPorts);
  struct Harness : Module {
    Harness(Module& p, Clock& clk, std::vector<std::unique_ptr<Buffer<std::uint32_t>>>& in,
            std::vector<std::unique_ptr<Buffer<std::uint32_t>>>& out, int total)
        : Module(p, "tb") {
      Thread("producer", clk, [&in, total] {
        int sent = 0;
        while (sent < total) {
          for (auto& ch : in) {
            if (sent < total && ch->PushNB(static_cast<std::uint32_t>(sent))) ++sent;
          }
          wait();
        }
      });
      Thread("consumer", clk, [this, &out, total] {
        int got = 0;
        std::uint32_t v;
        while (got < total) {
          for (auto& ch : out) {
            if (ch->PopNB(v)) ++got;
          }
          wait();
        }
        done_cycle = this_cycle();
        Simulator::Current().Stop();
      });
    }
    std::uint64_t done_cycle = 0;
  } tb(top, clk, in_ch, out_ch, total);

  sim.Run(100_ms);
  CRAFT_ASSERT(tb.done_cycle > 0, "fig3 harness did not finish");
  CRAFT_ASSERT(dut.drops() == 0, "fig3 DUT dropped transactions");
  return static_cast<double>(tb.done_cycle) * kPorts / total;
}

template <unsigned kPorts>
void Row() {
  const double rtl = RunRtlReference<kPorts>();
  const double sim_acc = RunConnectionsHarness<kPorts>(SimMode::kSimAccurate);
  const double sig_acc = RunConnectionsHarness<kPorts>(SimMode::kSignalAccurate);
  std::printf("%8u %12.2f %14.2f %17.2f %12.1f%% %15.1f%%\n", kPorts, rtl, sim_acc,
              sig_acc, 100.0 * (sim_acc - rtl) / rtl, 100.0 * (sig_acc - rtl) / rtl);
}

}  // namespace
}  // namespace craft

int main() {
  std::printf("Figure 3: cycles per transaction, arbitrated crossbar\n");
  std::printf("(paper: RTL ~= sim-accurate for all sizes; signal-accurate error "
              "grows with ports)\n\n");
  std::printf("%8s %12s %14s %17s %12s %15s\n", "ports", "RTL", "sim-accurate",
              "signal-accurate", "sim-acc err", "signal-acc err");
  craft::Row<2>();
  craft::Row<4>();
  craft::Row<8>();
  craft::Row<16>();
  return 0;
}
