// §4 case study scale: per-partition gate/transistor inventory of the
// prototype SoC at its paper configuration (15 replicated PEs, two global
// memory halves, RISC-V, I/O), priced with the HLS area model — the
// "87M transistor" scale claim — plus the productivity arithmetic
// ("2K-20K gates (NAND2 equivalents) per engineer-day on unique unit-level
// designs").
#include <cstdio>

#include "gals/area_model.hpp"
#include "hls/qor.hpp"

namespace {

using craft::hls::AreaModel;

/// Gate inventory of one PE built from the scheduled MatchLib components
/// plus its SRAM macros (priced per bit, 6T cells).
struct UnitArea {
  double logic_gates = 0.0;
  double sram_bits = 0.0;

  double transistors(const AreaModel& m) const {
    return m.GatesToTransistors(logic_gates) + 6.0 * sram_bits;
  }

  /// Whole-partition area in NAND2 equivalents (SRAM bitcells are ~6T but
  /// far denser than logic; 1.5 gate-equivalents per bit is a standard
  /// planning number).
  double total_gate_equivalents() const { return logic_gates + 1.5 * sram_bits; }
};

UnitArea PeArea(const AreaModel& m) {
  using namespace craft::hls;
  UnitArea u;
  // Datapath: 16-lane fp16-class MAC datapath + reduction + control ALU.
  u.logic_gates += Schedule(BuildVectorScale(16, 16), m).total_gates();
  u.logic_gates += Schedule(BuildDotProduct(16, 16), m).total_gates();
  u.logic_gates += Schedule(BuildReductionTree(16, 24), m).total_gates();
  u.logic_gates += Schedule(BuildAlu(32), m).total_gates();
  // Scratchpad arbitration + crossbar + NI (dst-loop style) + router.
  u.logic_gates += Schedule(BuildDstLoopCrossbar(8, 64), m).total_gates();
  u.logic_gates += Schedule(BuildRoundRobinArbiter(8), m).total_gates() * 8;
  u.logic_gates += 25e3;  // WHVC router + NI sequential control (regs, FSMs)
  // 64 KB scratchpad.
  u.sram_bits += 64.0 * 1024 * 8;
  return u;
}

UnitArea GlobalMemoryArea(const AreaModel& m) {
  using namespace craft::hls;
  UnitArea u;
  u.logic_gates += Schedule(BuildDstLoopCrossbar(8, 64), m).total_gates();
  u.logic_gates += Schedule(BuildRoundRobinArbiter(8), m).total_gates() * 8;
  u.logic_gates += 20e3;  // bank controllers + NI
  u.sram_bits += 512.0 * 1024 * 8;  // 512 KB half
  return u;
}

UnitArea RiscvArea(const AreaModel&) {
  UnitArea u;
  u.logic_gates = 450e3;       // Rocket-class in-order core + caches control
  u.sram_bits = 32.0 * 1024 * 8 * 2;  // I$ + D$
  return u;
}

UnitArea IoArea(const AreaModel&) {
  UnitArea u;
  u.logic_gates = 150e3;
  u.sram_bits = 16.0 * 1024 * 8;
  return u;
}

}  // namespace

int main() {
  AreaModel m;
  craft::gals::GalsAreaModel gals_model;

  struct Row {
    const char* name;
    UnitArea area;
    int count;
    unsigned async_ifaces;
  };
  const Row rows[] = {
      {"PE", PeArea(m), 15, 4},
      {"GlobalMemory half", GlobalMemoryArea(m), 2, 4},
      {"RISC-V", RiscvArea(m), 1, 3},
      {"I/O", IoArea(m), 1, 3},
  };

  std::printf("Prototype SoC inventory (paper configuration: 15 PEs + 2 GM halves "
              "+ RISC-V + I/O)\n\n");
  std::printf("%-18s %5s %14s %12s %16s %10s\n", "partition", "count", "logic gates",
              "SRAM KB", "transistors", "GALS ovh");
  double total_transistors = 0.0;
  double total_unique_gates = 0.0;
  for (const Row& r : rows) {
    const double gals_gates =
        gals_model.PartitionOverheadGates(r.async_ifaces, 4, 64);
    const double t = (r.area.transistors(m) + m.GatesToTransistors(gals_gates)) * r.count;
    total_transistors += t;
    total_unique_gates += r.area.logic_gates;
    std::printf("%-18s %5d %14.0f %12.0f %16.0f %9.2f%%\n", r.name, r.count,
                r.area.logic_gates, r.area.sram_bits / 8 / 1024, t,
                100.0 * gals_gates / r.area.total_gate_equivalents());
  }
  std::printf("\ntotal transistors: %.1fM (paper testchip: 87M)\n",
              total_transistors / 1e6);

  std::printf("\nProductivity arithmetic (paper: 2K-20K NAND2-eq gates per "
              "engineer-day on unique unit-level designs):\n");
  std::printf("  unique unit-level logic: %.0f gates\n", total_unique_gates);
  std::printf("  -> engineer-days at 20K gates/day: %.0f\n", total_unique_gates / 20e3);
  std::printf("  -> engineer-days at  2K gates/day: %.0f\n", total_unique_gates / 2e3);
  return 0;
}
