// §3.1 GALS area overhead: "Although we incur a small area penalty for
// local clock generators and pausible bisynchronous FIFOs, we estimate this
// overhead to be less than 3% for typical partition sizes."
//
// Sweeps partition size and async-interface count; also prices the five
// unique partitions of the prototype SoC (§4).
#include <cstdio>
#include <initializer_list>

#include "gals/area_model.hpp"

int main() {
  using namespace craft::gals;
  GalsAreaModel m;
  std::printf("GALS area overhead: clock generator + pausible bisync FIFOs\n");
  std::printf("(paper: < 3%% for typical partition sizes)\n\n");
  std::printf("%16s", "partition gates");
  for (unsigned ifaces : {2u, 4u, 6u, 8u}) std::printf("  %6u ifaces", ifaces);
  std::printf("\n");
  for (double gates : {50e3, 100e3, 300e3, 500e3, 1e6, 2e6}) {
    std::printf("%16.0f", gates);
    for (unsigned ifaces : {2u, 4u, 6u, 8u}) {
      std::printf("  %12.2f%%",
                  100.0 * m.OverheadFraction(gates, ifaces, /*depth=*/4, /*width=*/64));
    }
    std::printf("\n");
  }

  std::printf("\nPrototype SoC partitions (per-partition overhead):\n");
  struct P {
    const char* name;
    double gates;
    unsigned ifaces;
  };
  for (const P& p : {P{"PE (x15)", 350e3, 4}, P{"GlobalMemory L", 600e3, 4},
                     P{"GlobalMemory R", 600e3, 4}, P{"RISC-V", 450e3, 3},
                     P{"I/O", 150e3, 3}}) {
    std::printf("  %-16s %10.0f gates, %u async ifaces -> %5.2f%%\n", p.name, p.gates,
                p.ifaces, 100.0 * m.OverheadFraction(p.gates, p.ifaces, 4, 64));
  }
  return 0;
}
