// craft-prove accuracy characterization: how tight are the static
// sustainable-rate bounds against measured (craft-stats) throughput on
// saturating benches? Three representative cases:
//
//   buffer_pipeline   a saturated single-clock Buffer chain — the structural
//                     one-token-per-cycle bound should be met almost exactly
//   gals_pipeline     the shipped three-domain reference pipeline — both
//                     crossings are predicted to saturate at the slowest
//                     domain's rate (1/1300 ps)
//   sync_limited      a crossing whose synchronizer window (4 ns each way)
//                     is the limiter — predicted depth/(2 x sync_delay)
//
// The accuracy ratios land in README.md's craft-prove quickstart and are
// archived by CI as BENCH_prove_accuracy.json.
#include <cstdio>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "bench_json.hpp"
#include "connections/connections.hpp"
#include "gals/gals.hpp"
#include "kernel/kernel.hpp"
#include "kernel/stats.hpp"
#include "lint/ref_designs.hpp"

namespace craft::analyze {
namespace {

using namespace craft::literals;

struct Pusher : Module {
  connections::Out<int> out;
  Pusher(Module& parent, Clock& clk) : Module(parent, "prod") {
    Thread("run", clk, [this] {
      for (int i = 0;; ++i) out.Push(i);
    });
  }
};
struct Popper : Module {
  connections::In<int> in;
  Popper(Module& parent, Clock& clk) : Module(parent, "cons") {
    Thread("run", clk, [this] {
      for (;;) (void)in.Pop();
    });
  }
};

struct Row {
  std::string name;
  double predicted_tokens_per_ns = 0.0;
  double measured_tokens_per_ns = 0.0;
  double accuracy() const {
    return predicted_tokens_per_ns > 0.0
               ? measured_tokens_per_ns / predicted_tokens_per_ns
               : 0.0;
  }
};

Row BufferPipeline() {
  Simulator sim;
  sim.stats().Enable();
  Clock clk(sim, "clk", 1_ns);
  Module top(sim, "top");
  connections::Buffer<int> ch(top, "ch", clk, 4);
  Pusher prod(top, clk);
  Popper cons(top, clk);
  prod.out(ch);
  cons.in(ch);
  const Analysis a = Analyze(sim.design_graph());
  sim.Run(100_us);
  Row r{"buffer_pipeline"};
  r.predicted_tokens_per_ns = FindChannelBound(a, "top.ch")->tokens_per_ps * 1000.0;
  r.measured_tokens_per_ns =
      stats::MeasuredChannelRates(sim).at("top.ch").tokens_per_ps * 1000.0;
  return r;
}

std::vector<Row> GalsPipeline() {
  std::vector<Row> rows;
  for (const lint::RefDesign& d : lint::ReferenceDesigns()) {
    if (d.name != "gals_pipeline") continue;
    Simulator sim;
    sim.stats().Enable();
    const auto handle = d.build(sim);
    const Analysis a = Analyze(sim.design_graph());
    sim.Run(1_ms);
    for (const auto& [name, m] : stats::MeasuredCrossingRates(sim)) {
      Row r{"gals_pipeline:" + name};
      r.predicted_tokens_per_ns = FindCrossingBound(a, name)->tokens_per_ps * 1000.0;
      r.measured_tokens_per_ns = m.tokens_per_ps * 1000.0;
      rows.push_back(r);
    }
  }
  return rows;
}

Row SyncLimited() {
  Simulator sim;
  sim.stats().Enable();
  Clock pclk(sim, "p", 1_ns);
  Clock cclk(sim, "c", 1_ns);
  Module top(sim, "top");
  connections::Buffer<int> in_ch(top, "in", pclk, 2);
  connections::Buffer<int> out_ch(top, "out", cclk, 2);
  gals::PausibleBisyncFifo<int, 4> fifo(top, "fifo", pclk, cclk,
                                        /*sync_delay=*/4000);
  fifo.in(in_ch);
  fifo.out(out_ch);
  Pusher prod(top, pclk);
  Popper cons(top, cclk);
  prod.out(in_ch);
  cons.in(out_ch);
  const Analysis a = Analyze(sim.design_graph());
  sim.Run(1_ms);
  Row r{"sync_limited"};
  r.predicted_tokens_per_ns =
      FindCrossingBound(a, "top.fifo")->tokens_per_ps * 1000.0;
  r.measured_tokens_per_ns =
      stats::MeasuredCrossingRates(sim).at("top.fifo").tokens_per_ps * 1000.0;
  return r;
}

}  // namespace
}  // namespace craft::analyze

int main() {
  using namespace craft::analyze;
  std::printf("craft-prove: static bound vs measured throughput\n\n");
  std::printf("%-28s %16s %16s %10s\n", "case", "predicted t/ns", "measured t/ns",
              "meas/pred");
  std::vector<Row> rows;
  rows.push_back(BufferPipeline());
  for (const Row& r : GalsPipeline()) rows.push_back(r);
  rows.push_back(SyncLimited());
  std::vector<craft::bench::Metric> metrics;
  for (const Row& r : rows) {
    std::printf("%-28s %16.4f %16.4f %10.3f\n", r.name.c_str(),
                r.predicted_tokens_per_ns, r.measured_tokens_per_ns,
                r.accuracy());
    std::string key = r.name;
    for (char& c : key) {
      if (c == ':' || c == '.') c = '_';
    }
    metrics.push_back(craft::bench::Num(key + "_predicted", r.predicted_tokens_per_ns));
    metrics.push_back(craft::bench::Num(key + "_measured", r.measured_tokens_per_ns));
    metrics.push_back(craft::bench::Num(key + "_accuracy", r.accuracy()));
  }
  craft::bench::EmitJson("prove_accuracy", metrics);
  return 0;
}
