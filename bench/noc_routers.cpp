// Ablation: SFRouter vs WHVCRouter (the two MatchLib NoC routers, Table 2)
// on a 4-hop pipeline of routers — per-packet latency and sustained
// throughput as a function of packet length. Wormhole+VC cuts per-hop
// latency from O(packet) to O(1), which is why the prototype SoC's PE
// network uses WHVCRouter.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "connections/packetizer.hpp"
#include "kernel/kernel.hpp"
#include "matchlib/routers.hpp"

namespace craft::matchlib {
namespace {

using namespace craft::literals;
using connections::Buffer;
using connections::Flit;

constexpr unsigned kHops = 4;
constexpr int kPackets = 200;

struct Result {
  double head_latency;  // inject -> first eject flit, cycles
  double cycles_per_packet;
  std::uint64_t link_stalls;     // craft-stats: link full-stall + reject cycles
  std::uint64_t vc_high_water;   // craft-stats: deepest VC FIFO occupancy seen
  double wall_seconds = 0.0;     // host time inside sim.Run
};

/// A straight chain of kHops radix-2 routers. Port 0 ejects at the last
/// hop; port 1 forwards. Router type selected by template. `with_stats`
/// toggles the telemetry registry so main() can report its overhead.
template <bool kWormhole>
Result RunChain(unsigned packet_len, bool with_stats = true) {
  Simulator sim;
  if (with_stats) sim.stats().Enable();  // link contention + VC queue telemetry
  Clock clk(sim, "clk", 1_ns);
  Module top(sim, "top");
  Buffer<Flit> inj(top, "inj", clk, 4), ej(top, "ej", clk, 4);
  std::vector<std::unique_ptr<Buffer<Flit>>> links;
  using Wh = WHVCRouter<2, 1>;
  using Sf = SFRouter<2>;
  std::vector<std::unique_ptr<Wh>> whs;
  std::vector<std::unique_ptr<Sf>> sfs;
  // Route: eject (port 0) only at the last hop.
  for (unsigned h = 0; h < kHops; ++h) {
    const bool last = (h + 1 == kHops);
    auto route = [last](std::uint8_t) { return last ? 0u : 1u; };
    if constexpr (kWormhole) {
      whs.push_back(std::make_unique<Wh>(top, "r" + std::to_string(h), clk, route));
    } else {
      sfs.push_back(std::make_unique<Sf>(top, "r" + std::to_string(h), clk, route));
    }
  }
  auto bind_in = [&](unsigned h, Buffer<Flit>& ch) {
    if constexpr (kWormhole) {
      whs[h]->in[h == 0 ? 0 : 1][0](ch);
    } else {
      sfs[h]->in[h == 0 ? 0 : 1](ch);
    }
  };
  auto bind_out = [&](unsigned h, Buffer<Flit>& ch, bool eject) {
    if constexpr (kWormhole) {
      whs[h]->out[eject ? 0 : 1][0](ch);
    } else {
      sfs[h]->out[eject ? 0 : 1](ch);
    }
  };
  bind_in(0, inj);
  for (unsigned h = 0; h + 1 < kHops; ++h) {
    links.push_back(std::make_unique<Buffer<Flit>>(top, "l" + std::to_string(h), clk, 2));
    bind_out(h, *links.back(), false);
    bind_in(h + 1, *links.back());
  }
  bind_out(kHops - 1, ej, true);

  struct Tb : Module {
    Tb(Module& p, Clock& clk, Buffer<Flit>& inj, Buffer<Flit>& ej, unsigned len)
        : Module(p, "tb") {
      Thread("src", clk, [&inj, len] {
        for (int pkt = 0; pkt < kPackets; ++pkt) {
          for (unsigned i = 0; i < len; ++i) {
            Flit f;
            f.payload = (static_cast<std::uint64_t>(pkt) << 16) | i;
            f.first = (i == 0);
            f.last = (i + 1 == len);
            f.dest = 0;
            inj.Push(f);
          }
        }
      });
      Thread("dst", clk, [this, &ej, len] {
        for (int pkt = 0; pkt < kPackets; ++pkt) {
          for (unsigned i = 0; i < len; ++i) {
            (void)ej.Pop();
            if (pkt == 0 && i == 0) first_flit_cycle = this_cycle();
          }
        }
        done_cycle = this_cycle();
        Simulator::Current().Stop();
      });
    }
    std::uint64_t first_flit_cycle = 0;
    std::uint64_t done_cycle = 0;
  } tb(top, clk, inj, ej, packet_len);

  const auto wall_start = std::chrono::steady_clock::now();
  sim.Run(100_ms);
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;
  CRAFT_ASSERT(tb.done_cycle > 0, "router chain did not finish");
  Result r{static_cast<double>(tb.first_flit_cycle),
           static_cast<double>(tb.done_cycle) / kPackets, 0, 0, wall.count()};
  for (const auto& [name, c] : sim.stats().channels()) {
    r.link_stalls += c.full_stall_cycles + c.push_rejects;
  }
  for (const auto& [name, f] : sim.stats().fifos()) {
    if (f.high_water > r.vc_high_water) r.vc_high_water = f.high_water;
  }
  return r;
}

}  // namespace
}  // namespace craft::matchlib

int main() {
  using namespace craft::matchlib;
  std::printf("NoC router ablation: store-and-forward vs wormhole+VC, %u hops\n\n",
              kHops);
  std::printf("%10s %16s %16s %18s %18s %14s %12s\n", "pkt flits", "SF head lat",
              "WH head lat", "SF cyc/packet", "WH cyc/packet", "WH link stalls",
              "WH vc depth");
  for (unsigned len : {2u, 4u, 8u, 16u}) {
    const Result sf = RunChain<false>(len);
    const Result wh = RunChain<true>(len);
    std::printf("%10u %16.0f %16.0f %18.1f %18.1f %14llu %12llu\n", len,
                sf.head_latency, wh.head_latency, sf.cycles_per_packet,
                wh.cycles_per_packet, static_cast<unsigned long long>(wh.link_stalls),
                static_cast<unsigned long long>(wh.vc_high_water));
  }
  std::printf("\n(store-and-forward head latency grows with hops x packet length; "
              "wormhole pipelines flits through hops)\n");

  // Machine-readable summary for CI: sustained wormhole throughput at the
  // longest packet size, wall time, and the cost of leaving craft-stats on
  // (same configuration run with the registry disabled).
  constexpr unsigned kJsonLen = 16;
  const Result wh_on = RunChain<true>(kJsonLen, true);
  const Result wh_off = RunChain<true>(kJsonLen, false);
  const double flits = static_cast<double>(kPackets) * kJsonLen;
  const double stats_overhead_pct =
      wh_off.wall_seconds > 0.0
          ? (wh_on.wall_seconds - wh_off.wall_seconds) / wh_off.wall_seconds * 100.0
          : 0.0;
  std::printf("\nwormhole %u-flit packets: %.0f flits in %.4fs wall "
              "(stats-enabled overhead %+.1f%%)\n",
              kJsonLen, flits, wh_on.wall_seconds, stats_overhead_pct);
  namespace bj = craft::bench;
  bj::EmitJson("noc_routers",
               {bj::Num("hw_threads", std::thread::hardware_concurrency()),
                bj::Num("packet_len_flits", kJsonLen),
                bj::Num("packets", static_cast<std::uint64_t>(kPackets)),
                bj::Num("wh_cycles_per_packet", wh_on.cycles_per_packet),
                bj::Num("wh_head_latency_cycles", wh_on.head_latency),
                bj::Num("wh_flits_per_wall_sec",
                        wh_on.wall_seconds > 0.0 ? flits / wh_on.wall_seconds : 0.0),
                bj::Num("wall_seconds_stats_on", wh_on.wall_seconds),
                bj::Num("wall_seconds_stats_off", wh_off.wall_seconds),
                bj::Num("stats_enabled_overhead_pct", stats_overhead_pct),
                bj::Num("wh_link_stalls", wh_on.link_stalls),
                bj::Num("wh_vc_high_water", wh_on.vc_high_water)});
  return 0;
}
