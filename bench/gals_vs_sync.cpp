// Ablation for the §3.1 claim that fine-grained GALS eliminates top-level
// clock distribution and timing closure "without substantial area or
// latency penalties": runs the six SoC workloads on the identical SoC in
// (a) fully synchronous single-clock mode and (b) fine-grained GALS mode
// (per-partition clock generators + pausible-FIFO links), and reports the
// cycle-count penalty of the asynchronous crossings.
#include <cstdio>

#include "soc/workloads.hpp"

namespace craft::soc {
namespace {

using namespace craft::literals;

std::uint64_t Run(const Workload& w, bool gals) {
  Simulator sim;
  SocConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.gals = gals;
  SocTop soc(sim, cfg);
  const WorkloadRun r = RunWorkload(soc, w, 500_ms);
  CRAFT_ASSERT(r.ok, "gals_vs_sync workload " << r.name << " failed: " << r.error);
  return r.cycles;
}

}  // namespace
}  // namespace craft::soc

int main() {
  using namespace craft::soc;
  std::printf("GALS vs fully synchronous: workload cycle counts\n");
  std::printf("(paper: GALS eliminates global clock distribution 'without "
              "substantial area or latency penalties')\n\n");
  std::printf("%-10s %14s %14s %12s\n", "test", "sync cycles", "GALS cycles", "penalty");
  double worst = 0.0;
  for (const Workload& w : SixSocTests()) {
    const std::uint64_t sync = Run(w, false);
    const std::uint64_t gals = Run(w, true);
    const double pen =
        100.0 * (static_cast<double>(gals) - static_cast<double>(sync)) / sync;
    std::printf("%-10s %14llu %14llu %+11.1f%%\n", w.name.c_str(),
                (unsigned long long)sync, (unsigned long long)gals, pen);
    worst = std::max(worst, pen);
  }
  std::printf("\nworst-case GALS latency penalty: %.1f%% (area side: see "
              "gals_overhead)\n", worst);
  return 0;
}
