// craft-par randomized stall-injection fuzz (the nightly CI campaign).
//
// Each seed arms a craft-chaos latency-only FaultPlan (channel stalls, GALS
// pause storms, deferred wakeups — DESIGN.md §11) making a distinct timing
// universe for the GALS prototype SoC running vecmul. Every universe is
// simulated twice — n=1 and n=4 workers — and the two runs must agree
// exactly (golden check, controller cycles, channel
// transfers). Any disagreement is a determinism bug in the parallel engine;
// the failing seed is printed for replay, together with the craft-trace
// backpressure blame chains of the parallel run to localize where the two
// timelines diverged.
//
//   par_fuzz [--seed-start S] [--seed-count N] [--stall P]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "connections/channel_control.hpp"
#include "soc/workloads.hpp"
#include "trace/trace.hpp"

namespace craft::soc {
namespace {

using namespace craft::literals;

struct Outcome {
  bool ok = false;
  std::uint64_t cycles = 0;
  std::uint64_t transfers = 0;
  std::string error;
};

Outcome RunUniverse(unsigned parallelism, double stall_prob, std::uint64_t seed,
                    Simulator* sim_out_owner) {
  Simulator& sim = *sim_out_owner;
  sim.trace_events().Enable();  // for blame chains on mismatch
  if (stall_prob > 0.0) {
    // Each seed is one timing universe, drawn by craft-chaos (which
    // generalized this benchmark's original ad-hoc stall injector): channel
    // stalls as before, plus GALS pause storms and deferred wakeups — fault
    // classes ApplyStallToAll never reached. Armed before elaboration so
    // every site snapshots its fault point.
    FaultPlan plan;
    plan.seed = seed;
    plan.channel_valid_stall_prob = stall_prob;
    plan.channel_ready_stall_prob = stall_prob / 2;
    plan.crossing_pause_prob = stall_prob / 2;
    plan.crossing_pause_max_cycles = 4;
    plan.wakeup_delay_prob = stall_prob / 8;
    sim.chaos().Enable(plan);
  }
  SocConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.gals = true;
  cfg.parallelism = parallelism;
  SocTop soc(sim, cfg);
  const Workload w = SixSocTests()[0];  // vecmul exercises DMA + compute
  w.setup(soc);
  Outcome o;
  o.cycles = soc.RunCommands(w.commands(soc), 500_ms);
  o.ok = w.check(soc, &o.error);
  o.transfers = connections::ChannelControl::TotalTransfers();
  return o;
}

}  // namespace
}  // namespace craft::soc

int main(int argc, char** argv) {
  using namespace craft::soc;
  std::uint64_t seed_start = 1;
  unsigned seed_count = 3;
  double stall = 0.25;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--seed-start") == 0) {
      seed_start = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed-count") == 0) {
      seed_count = static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    } else if (std::strcmp(argv[i], "--stall") == 0) {
      stall = std::strtod(argv[i + 1], nullptr);
    }
  }

  std::printf("craft-par stall-injection fuzz: vecmul on the GALS 2x2 SoC, "
              "stall=%.2f, seeds [%llu, %llu]\n\n",
              stall, (unsigned long long)seed_start,
              (unsigned long long)(seed_start + seed_count - 1));
  std::printf("%10s %8s %12s %12s %12s %8s\n", "seed", "mode", "cycles",
              "transfers", "golden", "verdict");

  unsigned failures = 0;
  for (std::uint64_t seed = seed_start; seed < seed_start + seed_count; ++seed) {
    Outcome o1, o4;
    {
      craft::Simulator sim;
      o1 = RunUniverse(1, stall, seed, &sim);
    }
    bool mismatch = false;
    {
      craft::Simulator sim;
      o4 = RunUniverse(4, stall, seed, &sim);
      mismatch = o1.cycles != o4.cycles || o1.transfers != o4.transfers ||
                 o1.ok != o4.ok || !o1.ok;
      if (mismatch) {
        ++failures;
        std::printf("\nMISMATCH at seed %llu — replay with: par_fuzz "
                    "--seed-start %llu --seed-count 1 --stall %.2f\n",
                    (unsigned long long)seed, (unsigned long long)seed, stall);
        std::printf("  n=1: cycles=%llu transfers=%llu ok=%d %s\n",
                    (unsigned long long)o1.cycles, (unsigned long long)o1.transfers,
                    o1.ok, o1.error.c_str());
        std::printf("  n=4: cycles=%llu transfers=%llu ok=%d %s\n",
                    (unsigned long long)o4.cycles, (unsigned long long)o4.transfers,
                    o4.ok, o4.error.c_str());
        std::printf("\nBackpressure blame chains of the n=4 run:\n%s\n",
                    craft::trace::FormatTable(
                        craft::trace::AttributeBackpressure(sim, 10))
                        .c_str());
      }
    }
    std::printf("%10llu %8s %12llu %12llu %12s %8s\n",
                (unsigned long long)seed, "n=1", (unsigned long long)o1.cycles,
                (unsigned long long)o1.transfers, o1.ok ? "PASS" : "FAIL", "");
    std::printf("%10s %8s %12llu %12llu %12s %8s\n", "", "n=4",
                (unsigned long long)o4.cycles, (unsigned long long)o4.transfers,
                o4.ok ? "PASS" : "FAIL", mismatch ? "FAIL" : "OK");
  }

  if (failures != 0) {
    std::printf("\n%u of %u seeds diverged between n=1 and n=4\n", failures,
                seed_count);
    return 1;
  }
  std::printf("\nall %u seeds bit-identical between n=1 and n=4\n", seed_count);
  return 0;
}
