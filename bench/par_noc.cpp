// craft-par speedup bench: the GALS prototype SoC (2x2 mesh: RISC-V
// controller, global memory, two PEs, NoC-connected, every node its own
// pausible clock domain) running the vecmul workload with the RTL-cosim
// per-cycle signal load enabled — i.e. the Fig. 6 "slow" configuration,
// which is exactly the case a parallel simulator is for: each node's
// netlist-activity emulation is heavy, embarrassingly domain-local work,
// and the only cross-domain traffic is NoC flits through pausible FIFOs.
//
// Runs the identical workload at n = 1, 2, 4 workers, checks results and
// cycle counts are bit-identical (the determinism guarantee), and reports
// wall-clock speedup. Speedup is only meaningful with >= 4 hardware
// threads; the JSON records hw_threads so CI can gate its >= 2x assertion
// on runner shape instead of trusting numbers from a starved host.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_json.hpp"
#include "soc/workloads.hpp"

namespace craft::soc {
namespace {

using namespace craft::literals;

struct Result {
  bool ok = false;
  std::uint64_t cycles = 0;
  double wall_sec = 0.0;
  unsigned workers = 0;
  unsigned groups = 0;
};

Result RunOnce(unsigned parallelism, unsigned signals_per_node) {
  Simulator sim;
  SocConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.gals = true;
  cfg.rtl_cosim = true;
  cfg.rtl_signals_per_node = signals_per_node;
  cfg.parallelism = parallelism;
  SocTop soc(sim, cfg);
  const Workload w = SixSocTests()[0];  // vecmul: DMA in, PE compute, DMA out
  const auto t0 = std::chrono::steady_clock::now();
  const WorkloadRun r = RunWorkload(soc, w, 500_ms);
  const auto t1 = std::chrono::steady_clock::now();
  Result out;
  out.ok = r.ok;
  out.cycles = r.cycles;
  out.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  const auto [workers, groups] = sim.parallel_shape();
  out.workers = workers;
  out.groups = groups;
  return out;
}

}  // namespace
}  // namespace craft::soc

int main() {
  using namespace craft::soc;
  unsigned signals = 2048;
  if (const char* env = std::getenv("CRAFT_PAR_BENCH_SIGNALS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v >= 16) signals = static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("craft-par speedup: GALS 2x2 SoC, vecmul, RTL-cosim load "
              "(%u signals/node), %u hardware threads\n\n",
              signals, hw);
  std::printf("%8s %8s %8s %12s %12s %10s %8s\n", "workers", "groups", "ok",
              "cycles", "wall [s]", "speedup", "");

  Result base{};
  bool deterministic = true;
  double wall[5] = {0, 0, 0, 0, 0};
  for (unsigned n : {1u, 2u, 4u}) {
    const Result r = RunOnce(n, signals);
    wall[n] = r.wall_sec;
    if (n == 1) {
      base = r;
    } else if (r.cycles != base.cycles || r.ok != base.ok) {
      deterministic = false;
    }
    std::printf("%8u %8u %8s %12llu %12.3f %9.2fx\n", r.workers, r.groups,
                r.ok ? "PASS" : "FAIL", (unsigned long long)r.cycles, r.wall_sec,
                n == 1 ? 1.0 : base.wall_sec / r.wall_sec);
  }
  const double speedup2 = wall[2] > 0 ? wall[1] / wall[2] : 0.0;
  const double speedup4 = wall[4] > 0 ? wall[1] / wall[4] : 0.0;
  std::printf("\nn=4 speedup: %.2fx (%s; honest numbers need >= 4 hardware "
              "threads)\n",
              speedup4, deterministic ? "deterministic" : "NON-DETERMINISTIC");

  craft::bench::EmitJson(
      "par_noc",
      {
          craft::bench::Num("hw_threads", hw),
          craft::bench::Num("rtl_signals_per_node", signals),
          craft::bench::Num("cycles", base.cycles),
          craft::bench::Bool("ok", base.ok),
          craft::bench::Bool("deterministic", deterministic),
          craft::bench::Num("wall_seconds_n1", wall[1]),
          craft::bench::Num("wall_seconds_n2", wall[2]),
          craft::bench::Num("wall_seconds_n4", wall[4]),
          craft::bench::Num("speedup_n2", speedup2),
          craft::bench::Num("speedup_n4", speedup4),
      });
  return (base.ok && deterministic) ? 0 : 1;
}
