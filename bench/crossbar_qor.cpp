// §2.4 crossbar coding-style case study: "Experimenting with a 32-lane
// 32-bit crossbar, we measured a 25% area penalty for the src-loop
// implementation over the dst-loop implementation in Catapult HLS."
//
// Sweeps lane count at 32-bit data, reporting HLS-model area, scheduled op
// count (compile-effort proxy), and raw combinational depth for both coding
// styles.
#include <cstdio>

#include "hls/qor.hpp"

int main() {
  using namespace craft::hls;
  AreaModel model;
  std::printf("Crossbar coding styles (32-bit lanes): src-loop vs dst-loop\n");
  std::printf("(paper: 25%% area penalty at 32 lanes; worse compile scalability "
              "for src-loop)\n\n");
  std::printf("%6s %14s %14s %9s %10s %10s %10s %10s\n", "lanes", "src gates",
              "dst gates", "penalty", "src ops", "dst ops", "src depth", "dst depth");
  for (unsigned lanes : {4u, 8u, 16u, 32u, 64u}) {
    // Raw depth measured without pipelining so the dependency-path claim is
    // visible; area from the default 48-level (16nm @ ~1.1 GHz) schedule.
    const CrossbarStudy areas = RunCrossbarStudy(lanes, 32, model);
    const CrossbarStudy depths =
        RunCrossbarStudy(lanes, 32, model, {.levels_per_cycle = 100000});
    std::printf("%6u %14.0f %14.0f %8.1f%% %10zu %10zu %10.1f %10.1f\n", lanes,
                areas.src_loop.total_gates(), areas.dst_loop.total_gates(),
                100.0 * areas.area_penalty(), areas.src_loop.scheduled_ops,
                areas.dst_loop.scheduled_ops, depths.src_loop.critical_path_levels,
                depths.dst_loop.critical_path_levels);
  }
  const CrossbarStudy headline = RunCrossbarStudy(32, 32, AreaModel{});
  std::printf("\nheadline (32 lanes x 32 bit): src-loop area penalty = %.1f%% "
              "(paper: 25%%)\n",
              100.0 * headline.area_penalty());
  return 0;
}
