// ML accelerator example: runs a small convolutional-layer tile on the
// prototype SoC (Fig. 5) — the RISC-V controller programs every PE to
// convolve its slice of the input feature row, with data staged through the
// banked global memory over the WHVC NoC, all partitions on their own GALS
// clocks.
//
// Build & run:  ./build/examples/ml_accelerator
#include <cstdio>
#include <vector>

#include "lint/lint.hpp"
#include "soc/soc.hpp"

using namespace craft;
using namespace craft::literals;
using namespace craft::soc;

int main() {
  Simulator sim;
  SocConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.gals = true;  // per-partition clock generators + pausible FIFO links
  SocTop soc(sim, cfg);

  // Elaboration done: run the design-rule checks before simulating.
  const auto findings = lint::CheckDesignGraph(sim.design_graph());
  if (lint::ErrorCount(findings) > 0) {
    std::fputs(lint::FormatText("ml_accelerator", findings).c_str(), stderr);
    return 1;
  }

  constexpr unsigned kTileLen = 32;  // outputs per PE
  constexpr unsigned kTaps = 5;
  const unsigned num_pes = static_cast<unsigned>(soc.pe_nodes().size());

  // Input row (shared halo between tiles) and filter in global memory.
  const std::uint32_t kInputBase = 0x100;
  const std::uint32_t kFilterBase = 0x800;
  const std::uint32_t kOutputBase = 0x900;
  const unsigned total_in = num_pes * kTileLen + kTaps - 1;
  std::vector<float> input(total_in), filter(kTaps);
  for (unsigned i = 0; i < total_in; ++i) input[i] = 0.125f * static_cast<float>(i % 17) - 1.0f;
  for (unsigned t = 0; t < kTaps; ++t) filter[t] = (t % 2 ? -0.25f : 0.5f);
  for (unsigned i = 0; i < total_in; ++i) {
    soc.PreloadGm(kInputBase + i, Float32::FromFloat(input[i]).bits());
  }
  for (unsigned t = 0; t < kTaps; ++t) {
    soc.PreloadGm(kFilterBase + t, Float32::FromFloat(filter[t]).bits());
  }

  // Command table: each PE fetches its tile (+halo) and the filter, runs the
  // conv1d kernel, and writes its slice of the output row back.
  std::vector<Command> cmds;
  auto launch = [&](unsigned node, std::initializer_list<std::pair<std::uint32_t, std::uint32_t>> regs) {
    for (const auto& [csr, val] : regs) {
      cmds.push_back(Command::Write(RemoteCsrAddr(node, csr), val));
    }
    cmds.push_back(Command::Write(RemoteCsrAddr(node, kCsrStart), 1));
  };
  auto barrier = [&] {
    for (unsigned node : soc.pe_nodes()) {
      cmds.push_back(Command::PollEq(RemoteCsrAddr(node, kCsrStatus), 2));
    }
  };

  for (unsigned k = 0; k < num_pes; ++k) {
    launch(soc.pe_nodes()[k],
           {{kCsrCmd, (std::uint32_t)PeOp::kDmaIn},
            {kCsrArg1, kInputBase + k * kTileLen},
            {kCsrArg2, 0},
            {kCsrLen, kTileLen + kTaps - 1}});
  }
  barrier();
  for (unsigned k = 0; k < num_pes; ++k) {
    launch(soc.pe_nodes()[k], {{kCsrCmd, (std::uint32_t)PeOp::kDmaIn},
                               {kCsrArg1, kFilterBase},
                               {kCsrArg2, 64},
                               {kCsrLen, kTaps}});
  }
  barrier();
  for (unsigned k = 0; k < num_pes; ++k) {
    launch(soc.pe_nodes()[k], {{kCsrCmd, (std::uint32_t)PeOp::kConv1d},
                               {kCsrArg0, 0},
                               {kCsrArg1, 64},
                               {kCsrArg2, 128},
                               {kCsrLen, kTileLen},
                               {kCsrAux, kTaps}});
  }
  barrier();
  for (unsigned k = 0; k < num_pes; ++k) {
    launch(soc.pe_nodes()[k], {{kCsrCmd, (std::uint32_t)PeOp::kDmaOut},
                               {kCsrArg0, 128},
                               {kCsrArg1, kOutputBase + k * kTileLen},
                               {kCsrLen, kTileLen}});
  }
  barrier();
  cmds.push_back(Command::Halt());

  const std::uint64_t cycles = soc.RunCommands(cmds, 500_ms);

  // Verify against a golden model using the same MatchLib float ops.
  unsigned mismatches = 0;
  for (unsigned i = 0; i < num_pes * kTileLen; ++i) {
    Float32 acc = Float32::Zero();
    for (unsigned t = 0; t < kTaps; ++t) {
      acc = FpMulAdd(Float32::FromFloat(input[i + t]), Float32::FromFloat(filter[t]), acc);
    }
    if (soc.PeekGm(kOutputBase + i) != acc.bits()) ++mismatches;
  }

  std::printf("conv layer tile: %u PEs x %u outputs, %u-tap filter\n", num_pes,
              kTileLen, kTaps);
  std::printf("completed in %llu controller cycles on GALS clocks "
              "(%u async NoC link channels)\n",
              (unsigned long long)cycles, soc.noc().async_link_count());
  std::printf("verification: %u mismatches -> %s\n", mismatches,
              mismatches == 0 ? "PASS" : "FAIL");
  return mismatches == 0 ? 0 : 1;
}
