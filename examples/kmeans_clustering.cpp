// K-means clustering on the prototype SoC: the full Lloyd's-algorithm loop.
// PEs execute the distance/argmin assignment step in parallel (paper §4:
// "supports applications such as convolutional neural networks, K-means
// clustering, and other image processing workloads"); the host testbench
// plays the role of the software half (centroid update), iterating until
// the assignment stabilizes.
//
// Build & run:  ./build/examples/kmeans_clustering
#include <cstdio>
#include <vector>

#include "kernel/rng.hpp"
#include "lint/lint.hpp"
#include "soc/soc.hpp"

using namespace craft;
using namespace craft::literals;
using namespace craft::soc;

namespace {

constexpr unsigned kDim = 2;
constexpr unsigned kK = 3;
constexpr unsigned kPointsPerPe = 16;

float Bits2F(std::uint64_t w) { return Float32::FromBits((std::uint32_t)w).ToFloat(); }

}  // namespace

int main() {
  Simulator sim;
  SocConfig cfg;
  cfg.mesh_width = 2;
  cfg.mesh_height = 2;
  cfg.gals = true;
  SocTop soc(sim, cfg);

  // Elaboration done: run the design-rule checks before simulating.
  const auto findings = lint::CheckDesignGraph(sim.design_graph());
  if (lint::ErrorCount(findings) > 0) {
    std::fputs(lint::FormatText("kmeans_clustering", findings).c_str(), stderr);
    return 1;
  }

  const unsigned num_pes = static_cast<unsigned>(soc.pe_nodes().size());
  const unsigned n_points = num_pes * kPointsPerPe;

  // Three synthetic blobs.
  Rng rng(2026);
  std::vector<float> pts(n_points * kDim);
  const float cx[kK] = {-2.0f, 2.5f, 0.0f};
  const float cy[kK] = {-1.0f, 0.5f, 3.0f};
  for (unsigned p = 0; p < n_points; ++p) {
    const unsigned blob = p % kK;
    pts[p * kDim + 0] = cx[blob] + static_cast<float>(rng.NextDouble() - 0.5);
    pts[p * kDim + 1] = cy[blob] + static_cast<float>(rng.NextDouble() - 0.5);
  }
  std::vector<float> cents = {-1.0f, -1.0f, 1.0f, 0.0f, 0.0f, 1.0f};  // bad init

  const std::uint32_t kPtsBase = 0x100;   // per-PE slice written below
  const std::uint32_t kCentBase = 0xC00;
  const std::uint32_t kAssignBase = 0xD00;

  for (unsigned p = 0; p < n_points * kDim; ++p) {
    soc.PreloadGm(kPtsBase + p, Float32::FromFloat(pts[p]).bits());
  }

  std::vector<unsigned> assign(n_points, ~0u);
  int iterations = 0;
  for (int iter = 0; iter < 10; ++iter) {
    ++iterations;
    for (unsigned c = 0; c < kK * kDim; ++c) {
      soc.PreloadGm(kCentBase + c, Float32::FromFloat(cents[c]).bits());
    }
    // Assignment step on the PEs.
    std::vector<Command> cmds;
    for (unsigned k = 0; k < num_pes; ++k) {
      const unsigned node = soc.pe_nodes()[k];
      auto put = [&](std::uint32_t csr, std::uint32_t v) {
        cmds.push_back(Command::Write(RemoteCsrAddr(node, csr), v));
      };
      put(kCsrCmd, (std::uint32_t)PeOp::kDmaIn);
      put(kCsrArg1, kPtsBase + k * kPointsPerPe * kDim);
      put(kCsrArg2, 0);
      put(kCsrLen, kPointsPerPe * kDim);
      put(kCsrStart, 1);
    }
    for (unsigned node : soc.pe_nodes()) {
      cmds.push_back(Command::PollEq(RemoteCsrAddr(node, kCsrStatus), 2));
    }
    for (unsigned k = 0; k < num_pes; ++k) {
      const unsigned node = soc.pe_nodes()[k];
      auto put = [&](std::uint32_t csr, std::uint32_t v) {
        cmds.push_back(Command::Write(RemoteCsrAddr(node, csr), v));
      };
      put(kCsrCmd, (std::uint32_t)PeOp::kDmaIn);
      put(kCsrArg1, kCentBase);
      put(kCsrArg2, 96);
      put(kCsrLen, kK * kDim);
      put(kCsrStart, 1);
    }
    for (unsigned node : soc.pe_nodes()) {
      cmds.push_back(Command::PollEq(RemoteCsrAddr(node, kCsrStatus), 2));
    }
    for (unsigned k = 0; k < num_pes; ++k) {
      const unsigned node = soc.pe_nodes()[k];
      auto put = [&](std::uint32_t csr, std::uint32_t v) {
        cmds.push_back(Command::Write(RemoteCsrAddr(node, csr), v));
      };
      put(kCsrCmd, (std::uint32_t)PeOp::kDistArgmin);
      put(kCsrArg0, 0);
      put(kCsrArg1, 96);
      put(kCsrArg2, 128);
      put(kCsrLen, kPointsPerPe);
      put(kCsrAux, (kK << 8) | kDim);
      put(kCsrStart, 1);
    }
    for (unsigned node : soc.pe_nodes()) {
      cmds.push_back(Command::PollEq(RemoteCsrAddr(node, kCsrStatus), 2));
    }
    for (unsigned k = 0; k < num_pes; ++k) {
      const unsigned node = soc.pe_nodes()[k];
      auto put = [&](std::uint32_t csr, std::uint32_t v) {
        cmds.push_back(Command::Write(RemoteCsrAddr(node, csr), v));
      };
      put(kCsrCmd, (std::uint32_t)PeOp::kDmaOut);
      put(kCsrArg0, 128);
      put(kCsrArg1, kAssignBase + k * kPointsPerPe);
      put(kCsrLen, kPointsPerPe);
      put(kCsrStart, 1);
    }
    for (unsigned node : soc.pe_nodes()) {
      cmds.push_back(Command::PollEq(RemoteCsrAddr(node, kCsrStatus), 2));
    }
    cmds.push_back(Command::Halt());
    const std::uint64_t cycles = soc.RunCommands(cmds, 500_ms);

    // Host side: read assignments, update centroids.
    std::vector<unsigned> new_assign(n_points);
    for (unsigned p = 0; p < n_points; ++p) {
      new_assign[p] = static_cast<unsigned>(soc.PeekGm(kAssignBase + p));
    }
    std::printf("iter %d: %llu cycles", iter, (unsigned long long)cycles);
    if (new_assign == assign) {
      std::printf("  (assignments stable -> converged)\n");
      break;
    }
    assign = new_assign;
    std::vector<float> sum(kK * kDim, 0.0f);
    std::vector<unsigned> cnt(kK, 0);
    for (unsigned p = 0; p < n_points; ++p) {
      ++cnt[assign[p]];
      for (unsigned d = 0; d < kDim; ++d) sum[assign[p] * kDim + d] += pts[p * kDim + d];
    }
    for (unsigned c = 0; c < kK; ++c) {
      if (cnt[c] == 0) continue;
      for (unsigned d = 0; d < kDim; ++d) cents[c * kDim + d] = sum[c * kDim + d] / cnt[c];
    }
    std::printf("  centroids:");
    for (unsigned c = 0; c < kK; ++c) {
      std::printf(" (%.2f, %.2f)", cents[c * kDim], cents[c * kDim + 1]);
    }
    std::printf("\n");
  }

  // Sanity: each blob's points should share an assignment.
  unsigned errors = 0;
  for (unsigned p = 0; p < n_points; ++p) {
    if (assign[p] != assign[p % kK]) ++errors;
  }
  std::printf("\nconverged after %d iterations; blob purity errors: %u -> %s\n",
              iterations, errors, errors == 0 ? "PASS" : "FAIL");
  (void)Bits2F;
  return errors == 0 ? 0 : 1;
}
