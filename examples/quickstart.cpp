// Quickstart: the OOHLS front end in ~80 lines.
//
// Builds a tiny latency-insensitive pipeline — producer -> MatchLib
// arbitrated scratchpad -> consumer — entirely from Connections ports and
// channels, runs it cycle-accurately, and shows the two headline features
// of the Connections library: performance-accurate simulation and
// zero-code-change stall injection.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <cstdlib>

#include "connections/connections.hpp"
#include "kernel/kernel.hpp"
#include "lint/lint.hpp"
#include "matchlib/mem_msgs.hpp"
#include "matchlib/scratchpad.hpp"

using namespace craft;
using namespace craft::literals;
using namespace craft::connections;
using craft::matchlib::MemReq;
using craft::matchlib::MemResp;

namespace {

/// A block with unified In/Out ports — the channel kind is chosen by
/// whoever wires it up (Table 1 of the paper).
struct Writer : Module {
  Out<MemReq> req;
  In<MemResp> resp;
  Out<bool> done;  ///< LI token: tells the reader the data is in place
  Writer(Module& parent, Clock& clk, int n) : Module(parent, "writer") {
    Thread("run", clk, [this, n] {
      for (int i = 0; i < n; ++i) {
        req.Push({.is_write = true, .addr = std::uint32_t(i), .wdata = std::uint64_t(i * i),
                  .id = 0});
        (void)resp.Pop();
      }
      std::printf("[%6llu ps] writer: stored %d squares\n",
                  (unsigned long long)Simulator::Current().now(), n);
      done.Push(true);
    });
  }
};

struct Reader : Module {
  Out<MemReq> req;
  In<MemResp> resp;
  In<bool> start;
  std::uint64_t checksum = 0;
  Reader(Module& parent, Clock& clk, int n) : Module(parent, "reader") {
    Thread("run", clk, [this, n] {
      (void)start.Pop();  // synchronize through a channel, not through time
      for (int i = 0; i < n; ++i) {
        req.Push({.is_write = false, .addr = std::uint32_t(i), .wdata = 0, .id = 0});
        checksum += resp.Pop().rdata;
      }
      std::printf("[%6llu ps] reader: checksum=%llu (cycle %llu)\n",
                  (unsigned long long)Simulator::Current().now(),
                  (unsigned long long)checksum, (unsigned long long)this_cycle());
      Simulator::Current().Stop();
    });
  }
};

std::uint64_t RunOnce(double stall_probability) {
  Simulator sim;  // sim-accurate Connections model by default
  Clock clk(sim, "clk", 1_ns);
  Module top(sim, "top");

  // A 4-bank scratchpad with two LI request/response port pairs.
  matchlib::Scratchpad<4, 256, 2> spad(top, "spad", clk);
  Buffer<MemReq> wreq(top, "wreq", clk, 2), rreq(top, "rreq", clk, 2);
  Buffer<MemResp> wresp(top, "wresp", clk, 2), rresp(top, "rresp", clk, 2);
  spad.req_in[0](wreq);
  spad.resp_out[0](wresp);
  spad.req_in[1](rreq);
  spad.resp_out[1](rresp);

  Writer writer(top, clk, 64);
  Reader reader(top, clk, 64);
  Buffer<bool> done_ch(top, "done", clk, 1);
  writer.req(wreq);
  writer.resp(wresp);
  writer.done(done_ch);
  reader.req(rreq);
  reader.resp(rresp);
  reader.start(done_ch);

  // Elaboration done: run the design-rule checks before simulating.
  const auto findings = lint::CheckDesignGraph(sim.design_graph());
  if (lint::ErrorCount(findings) > 0) {
    std::fputs(lint::FormatText("quickstart", findings).c_str(), stderr);
    std::exit(1);
  }

  // Stall injection: perturb every channel's timing without touching any of
  // the code above.
  if (stall_probability > 0.0) {
    ChannelControl::ApplyStallToAll({.valid_stall_prob = stall_probability, .seed = 42});
  }

  sim.Run(100_us);
  return reader.checksum;
}

}  // namespace

int main() {
  std::printf("-- clean run --\n");
  const std::uint64_t a = RunOnce(0.0);
  std::printf("-- 30%% stall injection (same design, same testbench) --\n");
  const std::uint64_t b = RunOnce(0.3);
  std::printf("\nchecksums %s: latency-insensitive design is timing-independent\n",
              a == b ? "match" : "DIFFER (bug!)");
  return a == b ? 0 : 1;
}
