// HLS design-space exploration example (paper §2.2: HLS "enables design
// exploration tradeoffs without changing source code").
//
// Takes one design — a 16-tap 16-bit FIR — and sweeps the two classic HLS
// knobs, clock target (logic-depth budget) and multiplier resource limit,
// printing the resulting latency / II / area trade-off curve. The source
// "code" (the dataflow graph) never changes; only constraints do.
//
// Build & run:  ./build/examples/hls_explorer
#include <cstdio>

#include "hls/designs.hpp"
#include "hls/scheduler.hpp"
#include "lint/lint.hpp"

namespace {

/// Lints one schedule point; a violation here means the scheduler produced
/// an illegal design point, so the whole sweep is suspect.
bool LintPoint(const craft::hls::DataflowGraph& g, const craft::hls::ScheduleResult& r,
               const craft::hls::ScheduleConstraints& c) {
  const auto findings = craft::lint::CheckSchedule(g, r, c);
  if (craft::lint::ErrorCount(findings) == 0) return true;
  std::fputs(craft::lint::FormatText(g.name(), findings).c_str(), stderr);
  return false;
}

}  // namespace

int main() {
  using namespace craft::hls;
  AreaModel model;
  const DataflowGraph fir = BuildFir(16, 16);

  std::printf("Design-space exploration: fir16_w16 (%zu schedulable ops)\n\n",
              fir.SchedulableOpCount());

  std::printf("-- clock-target sweep (unconstrained resources) --\n");
  std::printf("%14s %10s %6s %12s %12s %14s\n", "levels/cycle", "latency", "II",
              "logic gates", "reg gates", "total gates");
  for (unsigned budget : {12u, 16u, 24u, 32u, 48u, 96u}) {
    const ScheduleConstraints c{.levels_per_cycle = budget};
    const ScheduleResult r = Schedule(fir, model, c);
    if (!LintPoint(fir, r, c)) return 1;
    std::printf("%14u %10u %6u %12.0f %12.0f %14.0f\n", budget, r.latency_cycles,
                r.initiation_interval, r.logic_gates, r.register_gates, r.total_gates());
  }

  std::printf("\n-- multiplier-sharing sweep (48 levels/cycle) --\n");
  std::printf("%12s %10s %6s %14s\n", "multipliers", "latency", "II", "total gates");
  for (unsigned mults : {16u, 8u, 4u, 2u, 1u}) {
    const ScheduleConstraints c{.levels_per_cycle = 48, .max_multipliers = mults};
    const ScheduleResult r = Schedule(fir, model, c);
    if (!LintPoint(fir, r, c)) return 1;
    std::printf("%12u %10u %6u %14.0f\n", mults, r.latency_cycles,
                r.initiation_interval, r.total_gates());
  }

  std::printf("\n(throughput/area knob turns without touching the design source — "
              "the OOHLS decoupling of function from constraints)\n");
  return 0;
}
