// Fine-grained GALS demo (paper §3.1, Fig. 4): a four-stage image pipeline
// where every stage is its own partition with its own adaptive local clock
// generator — no global clock anywhere — connected by asynchronous LI
// channels (pausible bisynchronous FIFO crossings).
//
// The stages run at deliberately mismatched, supply-noise-modulated
// frequencies; the pipeline still computes exactly the right answer, and
// the example reports each generator's observed period spread and each
// crossing's measured latency.
//
// Build & run:  ./build/examples/gals_multiclock
#include <cstdio>
#include <vector>

#include "analyze/analyze.hpp"
#include "gals/gals.hpp"
#include "kernel/kernel.hpp"
#include "lint/lint.hpp"

using namespace craft;
using namespace craft::literals;
using namespace craft::gals;

namespace {

constexpr int kPixels = 256;

/// A pipeline stage: pops a pixel, applies fn, pushes the result.
struct Stage : Module {
  connections::In<int> in;
  connections::Out<int> out;
  Stage(Module& parent, const std::string& name, Clock& clk, int (*fn)(int))
      : Module(parent, name) {
    Thread("run", clk, [this, fn] {
      for (;;) out.Push(fn(in.Pop()));
    });
  }
};

int Brighten(int p) { return p + 16; }
int Clamp(int p) { return p > 255 ? 255 : p; }
int Invert(int p) { return 255 - p; }

}  // namespace

int main() {
  Simulator sim;
  Module top(sim, "soc");

  // Four partitions at 1.0 / 0.77 / 1.25 / 0.91 GHz nominal, each with 6%
  // supply-noise modulation tracked by its adaptive clock generator.
  Partition p_src(top, "src", {.nominal_period = 1000, .noise_amplitude = 0.06, .seed = 1});
  Partition p_bright(top, "bright",
                     {.nominal_period = 1300, .noise_amplitude = 0.06, .seed = 2});
  Partition p_clamp(top, "clamp", {.nominal_period = 800, .noise_amplitude = 0.06, .seed = 3});
  Partition p_inv(top, "invert", {.nominal_period = 1100, .noise_amplitude = 0.06, .seed = 4});

  AsyncChannel<int> c01(top, "c01", p_src.clk(), p_bright.clk());
  AsyncChannel<int> c12(top, "c12", p_bright.clk(), p_clamp.clk());
  AsyncChannel<int> c23(top, "c23", p_clamp.clk(), p_inv.clk());
  connections::Buffer<int> sink_ch(top, "sink", p_inv.clk(), 4);

  Stage bright(p_bright, "stage", p_bright.clk(), Brighten);
  bright.in(c01.consumer_end());
  bright.out(c12.producer_end());
  Stage clamp(p_clamp, "stage", p_clamp.clk(), Clamp);
  clamp.in(c12.consumer_end());
  clamp.out(c23.producer_end());
  Stage invert(p_inv, "stage", p_inv.clk(), Invert);
  invert.in(c23.consumer_end());
  invert.out(sink_ch);

  std::vector<int> results;
  struct Endpoints : Module {
    Endpoints(Module& parent, Partition& src, Partition& snk, AsyncChannel<int>& first,
              connections::Buffer<int>& sink_ch, std::vector<int>& results)
        : Module(parent, "tb") {
      src_out(first.producer_end());
      sink_in(sink_ch);
      Thread("feed", src.clk(), [this] {
        for (int i = 0; i < kPixels; ++i) src_out.Push((i * 7) % 256);
      });
      Thread("drain", snk.clk(), [this, &results] {
        for (int i = 0; i < kPixels; ++i) results.push_back(sink_in.Pop());
        Simulator::Current().Stop();
      });
    }
    connections::Out<int> src_out;
    connections::In<int> sink_in;
  } tb(top, p_src, p_inv, c01, sink_ch, results);

  // Elaboration done: every port bound, every crossing through a pausible
  // FIFO — prove it with the design-rule checks before simulating.
  const auto findings = lint::CheckDesignGraph(sim.design_graph());
  if (lint::ErrorCount(findings) > 0) {
    std::fputs(lint::FormatText("gals_multiclock", findings).c_str(), stderr);
    return 1;
  }

  // Static performance analysis (craft-prove): deadlock-freedom and a
  // sustainable-rate bound per crossing, before a single cycle runs. The
  // slowest partition (1300 ps nominal) bounds the whole pipeline.
  const analyze::Analysis proof = analyze::Analyze(sim.design_graph());
  if (lint::ErrorCount(proof.findings) > 0) {
    std::fputs(analyze::FormatText("gals_multiclock", proof).c_str(), stderr);
    return 1;
  }
  std::printf("static bounds (craft-prove):\n%-8s %18s\n", "link", "bound (tokens/ns)");
  for (auto* c : {&c01, &c12, &c23}) {
    const auto* b = analyze::FindCrossingBound(proof, c->full_name() + ".cdc");
    std::printf("%-8s %18.4f\n", c->name().c_str(),
                b ? b->tokens_per_ps * 1000.0 : 0.0);
  }
  std::printf("\n");

  sim.Run(100_ms);

  int errors = 0;
  for (int i = 0; i < kPixels; ++i) {
    if (results[static_cast<unsigned>(i)] != Invert(Clamp(Brighten((i * 7) % 256)))) {
      ++errors;
    }
  }

  std::printf("4-partition GALS pipeline, %d pixels, result: %s\n\n", kPixels,
              errors == 0 ? "PASS" : "FAIL");
  std::printf("%-8s %12s %12s %12s\n", "clock", "nominal ps", "min ps", "max ps");
  for (Partition* p : {&p_src, &p_bright, &p_clamp, &p_inv}) {
    std::printf("%-8s %12llu %12llu %12llu\n", p->name().c_str(),
                (unsigned long long)p->clk().period(),
                (unsigned long long)p->clock_gen().min_period_seen(),
                (unsigned long long)p->clock_gen().max_period_seen());
  }
  std::printf("\n%-8s %12s %18s\n", "link", "transfers", "mean latency (cyc)");
  for (auto* c : {&c01, &c12, &c23}) {
    std::printf("%-8s %12llu %18.2f\n", c->name().c_str(),
                (unsigned long long)c->transfer_count(), c->mean_crossing_latency_cycles());
  }
  return errors == 0 ? 0 : 1;
}
