#!/usr/bin/env python3
"""Validates a craft-farm-v1 manifest (see DESIGN.md section 14).

Usage: validate_farm_manifest.py FARM_MANIFEST.json

Checks the schema shape, that the trial list matches the declared matrix,
that the summary tallies agree with the per-trial records, and that the
run is not gated (any unwaived failure fails this script, mirroring
craft_farm's own exit code).
"""
import json
import sys

TRIAL_STATUSES = {"ok", "failed", "timeout", "cancelled"}


def fail(msg):
    print(f"validate_farm_manifest: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} FARM_MANIFEST.json")
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    if doc.get("schema") != "craft-farm-v1":
        fail(f"bad schema: {doc.get('schema')!r}")

    matrix = doc["matrix"]
    for axis in ("instruments", "designs", "seeds", "parallelism", "chaos"):
        if not isinstance(matrix[axis], list) or not matrix[axis]:
            fail(f"matrix.{axis} must be a non-empty list")

    policy = doc["policy"]
    for key in ("timeout_s", "retries", "backoff_s", "fail_fast"):
        if key not in policy:
            fail(f"policy.{key} missing")
    # Determinism contract: nothing scheduling-dependent in the manifest
    # proper. --jobs must not appear outside the n-variant timing section.
    if "jobs" in policy:
        fail("policy.jobs leaked into the manifest (breaks --jobs identity)")

    trials = doc["trials"]
    expected = 0
    if "cover" in matrix["instruments"]:
        expected += (len(matrix["designs"]) * len(matrix["seeds"])
                     * len(matrix["parallelism"]) * len(matrix["chaos"]))
    if "chaos" in matrix["instruments"]:
        expected += len(matrix["seeds"])
    if len(trials) != expected:
        fail(f"expected {expected} trials from the matrix, got {len(trials)}")

    ids = set()
    tallies = {s: 0 for s in TRIAL_STATUSES}
    attempts = waived = 0
    for t in trials:
        for key in ("id", "kind", "status", "exit_code", "attempts",
                    "timed_out", "waived", "artifact"):
            if key not in t:
                fail(f"trial {t.get('id', '?')}: {key} missing")
        if t["status"] not in TRIAL_STATUSES:
            fail(f"trial {t['id']}: bad status {t['status']!r}")
        if t["id"] in ids:
            fail(f"duplicate trial id {t['id']}")
        ids.add(t["id"])
        tallies[t["status"]] += 1
        attempts += t["attempts"]
        waived += t["waived"]
        if t["status"] == "ok" and t["exit_code"] != 0:
            fail(f"trial {t['id']}: ok with exit code {t['exit_code']}")

    summary = doc["summary"]
    for key, got in (("trials", len(trials)), ("ok", tallies["ok"]),
                     ("failed", tallies["failed"]),
                     ("timeout", tallies["timeout"]),
                     ("cancelled", tallies["cancelled"]),
                     ("waived", waived), ("attempts", attempts)):
        if summary[key] != got:
            fail(f"summary.{key} is {summary[key]}, trials say {got}")

    if "cover" in doc:
        cover = doc["cover"]
        if cover["shards_merged"] != sum(
                1 for t in trials if t["kind"] == "cover"
                and t["status"] == "ok"):
            fail("cover.shards_merged disagrees with ok cover trials")
        if cover["bins_hit"] > cover["bins"]:
            fail("cover.bins_hit exceeds cover.bins")

    if doc["gated"]:
        bad = [t["id"] for t in trials
               if t["status"] != "ok" and not t["waived"]]
        fail(f"campaign gated; unwaived failures: {bad or 'chaos oracle'}")

    print(f"validated {len(trials)} trials: {tallies['ok']} ok, "
          f"{waived} waived, {attempts} attempts; not gated")


if __name__ == "__main__":
    main()
