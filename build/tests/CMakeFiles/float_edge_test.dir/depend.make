# Empty dependencies file for float_edge_test.
# This may be replaced when dependencies are built.
