file(REMOVE_RECURSE
  "CMakeFiles/float_edge_test.dir/float_edge_test.cpp.o"
  "CMakeFiles/float_edge_test.dir/float_edge_test.cpp.o.d"
  "float_edge_test"
  "float_edge_test.pdb"
  "float_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/float_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
