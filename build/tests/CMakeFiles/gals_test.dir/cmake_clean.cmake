file(REMOVE_RECURSE
  "CMakeFiles/gals_test.dir/gals_test.cpp.o"
  "CMakeFiles/gals_test.dir/gals_test.cpp.o.d"
  "gals_test"
  "gals_test.pdb"
  "gals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
