# Empty compiler generated dependencies file for gals_test.
# This may be replaced when dependencies are built.
