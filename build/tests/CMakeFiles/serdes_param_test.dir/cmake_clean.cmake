file(REMOVE_RECURSE
  "CMakeFiles/serdes_param_test.dir/serdes_param_test.cpp.o"
  "CMakeFiles/serdes_param_test.dir/serdes_param_test.cpp.o.d"
  "serdes_param_test"
  "serdes_param_test.pdb"
  "serdes_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serdes_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
