# Empty compiler generated dependencies file for serdes_param_test.
# This may be replaced when dependencies are built.
