file(REMOVE_RECURSE
  "CMakeFiles/connections_test.dir/connections_test.cpp.o"
  "CMakeFiles/connections_test.dir/connections_test.cpp.o.d"
  "connections_test"
  "connections_test.pdb"
  "connections_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connections_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
