# Empty compiler generated dependencies file for connections_test.
# This may be replaced when dependencies are built.
