file(REMOVE_RECURSE
  "CMakeFiles/cache_param_test.dir/cache_param_test.cpp.o"
  "CMakeFiles/cache_param_test.dir/cache_param_test.cpp.o.d"
  "cache_param_test"
  "cache_param_test.pdb"
  "cache_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
