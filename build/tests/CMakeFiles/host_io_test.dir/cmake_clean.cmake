file(REMOVE_RECURSE
  "CMakeFiles/host_io_test.dir/host_io_test.cpp.o"
  "CMakeFiles/host_io_test.dir/host_io_test.cpp.o.d"
  "host_io_test"
  "host_io_test.pdb"
  "host_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
