# Empty compiler generated dependencies file for retimer_test.
# This may be replaced when dependencies are built.
