file(REMOVE_RECURSE
  "CMakeFiles/retimer_test.dir/retimer_test.cpp.o"
  "CMakeFiles/retimer_test.dir/retimer_test.cpp.o.d"
  "retimer_test"
  "retimer_test.pdb"
  "retimer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retimer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
