file(REMOVE_RECURSE
  "CMakeFiles/matchlib_modules_test.dir/matchlib_modules_test.cpp.o"
  "CMakeFiles/matchlib_modules_test.dir/matchlib_modules_test.cpp.o.d"
  "matchlib_modules_test"
  "matchlib_modules_test.pdb"
  "matchlib_modules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matchlib_modules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
