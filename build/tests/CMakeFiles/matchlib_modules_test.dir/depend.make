# Empty dependencies file for matchlib_modules_test.
# This may be replaced when dependencies are built.
