file(REMOVE_RECURSE
  "CMakeFiles/matchlib_core_test.dir/matchlib_core_test.cpp.o"
  "CMakeFiles/matchlib_core_test.dir/matchlib_core_test.cpp.o.d"
  "matchlib_core_test"
  "matchlib_core_test.pdb"
  "matchlib_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matchlib_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
