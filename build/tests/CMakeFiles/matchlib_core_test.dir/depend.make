# Empty dependencies file for matchlib_core_test.
# This may be replaced when dependencies are built.
