# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/connections_test[1]_include.cmake")
include("/root/repo/build/tests/matchlib_core_test[1]_include.cmake")
include("/root/repo/build/tests/matchlib_modules_test[1]_include.cmake")
include("/root/repo/build/tests/hls_test[1]_include.cmake")
include("/root/repo/build/tests/gals_test[1]_include.cmake")
include("/root/repo/build/tests/riscv_test[1]_include.cmake")
include("/root/repo/build/tests/soc_test[1]_include.cmake")
include("/root/repo/build/tests/retimer_test[1]_include.cmake")
include("/root/repo/build/tests/host_io_test[1]_include.cmake")
include("/root/repo/build/tests/cache_param_test[1]_include.cmake")
include("/root/repo/build/tests/serdes_param_test[1]_include.cmake")
include("/root/repo/build/tests/noc_test[1]_include.cmake")
include("/root/repo/build/tests/float_edge_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
