file(REMOVE_RECURSE
  "CMakeFiles/qor_parity.dir/qor_parity.cpp.o"
  "CMakeFiles/qor_parity.dir/qor_parity.cpp.o.d"
  "qor_parity"
  "qor_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qor_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
