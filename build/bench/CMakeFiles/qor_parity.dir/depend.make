# Empty dependencies file for qor_parity.
# This may be replaced when dependencies are built.
