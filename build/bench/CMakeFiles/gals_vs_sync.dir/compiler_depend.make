# Empty compiler generated dependencies file for gals_vs_sync.
# This may be replaced when dependencies are built.
