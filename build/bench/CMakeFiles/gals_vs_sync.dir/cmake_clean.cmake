file(REMOVE_RECURSE
  "CMakeFiles/gals_vs_sync.dir/gals_vs_sync.cpp.o"
  "CMakeFiles/gals_vs_sync.dir/gals_vs_sync.cpp.o.d"
  "gals_vs_sync"
  "gals_vs_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gals_vs_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
