file(REMOVE_RECURSE
  "CMakeFiles/soc_inventory.dir/soc_inventory.cpp.o"
  "CMakeFiles/soc_inventory.dir/soc_inventory.cpp.o.d"
  "soc_inventory"
  "soc_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
