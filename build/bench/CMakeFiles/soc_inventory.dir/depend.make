# Empty dependencies file for soc_inventory.
# This may be replaced when dependencies are built.
