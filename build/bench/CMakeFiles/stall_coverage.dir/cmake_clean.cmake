file(REMOVE_RECURSE
  "CMakeFiles/stall_coverage.dir/stall_coverage.cpp.o"
  "CMakeFiles/stall_coverage.dir/stall_coverage.cpp.o.d"
  "stall_coverage"
  "stall_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stall_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
