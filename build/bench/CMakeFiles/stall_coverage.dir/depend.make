# Empty dependencies file for stall_coverage.
# This may be replaced when dependencies are built.
