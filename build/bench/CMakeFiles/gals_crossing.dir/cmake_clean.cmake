file(REMOVE_RECURSE
  "CMakeFiles/gals_crossing.dir/gals_crossing.cpp.o"
  "CMakeFiles/gals_crossing.dir/gals_crossing.cpp.o.d"
  "gals_crossing"
  "gals_crossing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gals_crossing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
