# Empty dependencies file for gals_crossing.
# This may be replaced when dependencies are built.
