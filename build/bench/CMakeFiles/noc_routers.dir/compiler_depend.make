# Empty compiler generated dependencies file for noc_routers.
# This may be replaced when dependencies are built.
