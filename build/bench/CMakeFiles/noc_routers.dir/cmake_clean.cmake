file(REMOVE_RECURSE
  "CMakeFiles/noc_routers.dir/noc_routers.cpp.o"
  "CMakeFiles/noc_routers.dir/noc_routers.cpp.o.d"
  "noc_routers"
  "noc_routers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_routers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
