file(REMOVE_RECURSE
  "CMakeFiles/crossbar_qor.dir/crossbar_qor.cpp.o"
  "CMakeFiles/crossbar_qor.dir/crossbar_qor.cpp.o.d"
  "crossbar_qor"
  "crossbar_qor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossbar_qor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
