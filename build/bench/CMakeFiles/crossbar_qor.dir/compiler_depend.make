# Empty compiler generated dependencies file for crossbar_qor.
# This may be replaced when dependencies are built.
