# Empty dependencies file for gals_overhead.
# This may be replaced when dependencies are built.
