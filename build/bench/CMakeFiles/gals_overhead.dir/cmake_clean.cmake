file(REMOVE_RECURSE
  "CMakeFiles/gals_overhead.dir/gals_overhead.cpp.o"
  "CMakeFiles/gals_overhead.dir/gals_overhead.cpp.o.d"
  "gals_overhead"
  "gals_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gals_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
