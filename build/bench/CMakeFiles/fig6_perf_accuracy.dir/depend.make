# Empty dependencies file for fig6_perf_accuracy.
# This may be replaced when dependencies are built.
