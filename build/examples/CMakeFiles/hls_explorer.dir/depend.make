# Empty dependencies file for hls_explorer.
# This may be replaced when dependencies are built.
