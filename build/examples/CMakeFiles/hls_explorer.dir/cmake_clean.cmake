file(REMOVE_RECURSE
  "CMakeFiles/hls_explorer.dir/hls_explorer.cpp.o"
  "CMakeFiles/hls_explorer.dir/hls_explorer.cpp.o.d"
  "hls_explorer"
  "hls_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hls_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
