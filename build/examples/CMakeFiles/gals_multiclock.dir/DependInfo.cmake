
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/gals_multiclock.cpp" "examples/CMakeFiles/gals_multiclock.dir/gals_multiclock.cpp.o" "gcc" "examples/CMakeFiles/gals_multiclock.dir/gals_multiclock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/craft_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/connections/CMakeFiles/craft_connections.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/craft_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/riscv/CMakeFiles/craft_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/craft_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
