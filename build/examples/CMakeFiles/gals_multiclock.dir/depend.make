# Empty dependencies file for gals_multiclock.
# This may be replaced when dependencies are built.
