file(REMOVE_RECURSE
  "CMakeFiles/gals_multiclock.dir/gals_multiclock.cpp.o"
  "CMakeFiles/gals_multiclock.dir/gals_multiclock.cpp.o.d"
  "gals_multiclock"
  "gals_multiclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gals_multiclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
