file(REMOVE_RECURSE
  "CMakeFiles/ml_accelerator.dir/ml_accelerator.cpp.o"
  "CMakeFiles/ml_accelerator.dir/ml_accelerator.cpp.o.d"
  "ml_accelerator"
  "ml_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
