# Empty dependencies file for ml_accelerator.
# This may be replaced when dependencies are built.
