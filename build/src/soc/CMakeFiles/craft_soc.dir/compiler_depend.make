# Empty compiler generated dependencies file for craft_soc.
# This may be replaced when dependencies are built.
