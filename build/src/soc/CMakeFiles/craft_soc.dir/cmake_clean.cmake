file(REMOVE_RECURSE
  "CMakeFiles/craft_soc.dir/workloads.cpp.o"
  "CMakeFiles/craft_soc.dir/workloads.cpp.o.d"
  "libcraft_soc.a"
  "libcraft_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/craft_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
