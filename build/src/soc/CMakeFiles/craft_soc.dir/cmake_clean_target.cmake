file(REMOVE_RECURSE
  "libcraft_soc.a"
)
