# Empty dependencies file for craft_connections.
# This may be replaced when dependencies are built.
