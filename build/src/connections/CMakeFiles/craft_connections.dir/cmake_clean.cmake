file(REMOVE_RECURSE
  "CMakeFiles/craft_connections.dir/channel_control.cpp.o"
  "CMakeFiles/craft_connections.dir/channel_control.cpp.o.d"
  "libcraft_connections.a"
  "libcraft_connections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/craft_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
