file(REMOVE_RECURSE
  "libcraft_connections.a"
)
