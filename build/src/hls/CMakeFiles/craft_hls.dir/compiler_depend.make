# Empty compiler generated dependencies file for craft_hls.
# This may be replaced when dependencies are built.
