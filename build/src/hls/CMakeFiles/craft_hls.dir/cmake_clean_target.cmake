file(REMOVE_RECURSE
  "libcraft_hls.a"
)
