file(REMOVE_RECURSE
  "CMakeFiles/craft_hls.dir/designs.cpp.o"
  "CMakeFiles/craft_hls.dir/designs.cpp.o.d"
  "CMakeFiles/craft_hls.dir/qor.cpp.o"
  "CMakeFiles/craft_hls.dir/qor.cpp.o.d"
  "CMakeFiles/craft_hls.dir/rtl_emit.cpp.o"
  "CMakeFiles/craft_hls.dir/rtl_emit.cpp.o.d"
  "CMakeFiles/craft_hls.dir/scheduler.cpp.o"
  "CMakeFiles/craft_hls.dir/scheduler.cpp.o.d"
  "libcraft_hls.a"
  "libcraft_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/craft_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
