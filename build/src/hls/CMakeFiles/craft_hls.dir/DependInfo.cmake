
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/designs.cpp" "src/hls/CMakeFiles/craft_hls.dir/designs.cpp.o" "gcc" "src/hls/CMakeFiles/craft_hls.dir/designs.cpp.o.d"
  "/root/repo/src/hls/qor.cpp" "src/hls/CMakeFiles/craft_hls.dir/qor.cpp.o" "gcc" "src/hls/CMakeFiles/craft_hls.dir/qor.cpp.o.d"
  "/root/repo/src/hls/rtl_emit.cpp" "src/hls/CMakeFiles/craft_hls.dir/rtl_emit.cpp.o" "gcc" "src/hls/CMakeFiles/craft_hls.dir/rtl_emit.cpp.o.d"
  "/root/repo/src/hls/scheduler.cpp" "src/hls/CMakeFiles/craft_hls.dir/scheduler.cpp.o" "gcc" "src/hls/CMakeFiles/craft_hls.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/craft_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
