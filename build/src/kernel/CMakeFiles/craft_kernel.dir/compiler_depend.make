# Empty compiler generated dependencies file for craft_kernel.
# This may be replaced when dependencies are built.
