file(REMOVE_RECURSE
  "libcraft_kernel.a"
)
