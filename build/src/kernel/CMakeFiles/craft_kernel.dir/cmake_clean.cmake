file(REMOVE_RECURSE
  "CMakeFiles/craft_kernel.dir/clock.cpp.o"
  "CMakeFiles/craft_kernel.dir/clock.cpp.o.d"
  "CMakeFiles/craft_kernel.dir/fiber.cpp.o"
  "CMakeFiles/craft_kernel.dir/fiber.cpp.o.d"
  "CMakeFiles/craft_kernel.dir/module.cpp.o"
  "CMakeFiles/craft_kernel.dir/module.cpp.o.d"
  "CMakeFiles/craft_kernel.dir/process.cpp.o"
  "CMakeFiles/craft_kernel.dir/process.cpp.o.d"
  "CMakeFiles/craft_kernel.dir/simulator.cpp.o"
  "CMakeFiles/craft_kernel.dir/simulator.cpp.o.d"
  "CMakeFiles/craft_kernel.dir/trace.cpp.o"
  "CMakeFiles/craft_kernel.dir/trace.cpp.o.d"
  "libcraft_kernel.a"
  "libcraft_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/craft_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
