
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/clock.cpp" "src/kernel/CMakeFiles/craft_kernel.dir/clock.cpp.o" "gcc" "src/kernel/CMakeFiles/craft_kernel.dir/clock.cpp.o.d"
  "/root/repo/src/kernel/fiber.cpp" "src/kernel/CMakeFiles/craft_kernel.dir/fiber.cpp.o" "gcc" "src/kernel/CMakeFiles/craft_kernel.dir/fiber.cpp.o.d"
  "/root/repo/src/kernel/module.cpp" "src/kernel/CMakeFiles/craft_kernel.dir/module.cpp.o" "gcc" "src/kernel/CMakeFiles/craft_kernel.dir/module.cpp.o.d"
  "/root/repo/src/kernel/process.cpp" "src/kernel/CMakeFiles/craft_kernel.dir/process.cpp.o" "gcc" "src/kernel/CMakeFiles/craft_kernel.dir/process.cpp.o.d"
  "/root/repo/src/kernel/simulator.cpp" "src/kernel/CMakeFiles/craft_kernel.dir/simulator.cpp.o" "gcc" "src/kernel/CMakeFiles/craft_kernel.dir/simulator.cpp.o.d"
  "/root/repo/src/kernel/trace.cpp" "src/kernel/CMakeFiles/craft_kernel.dir/trace.cpp.o" "gcc" "src/kernel/CMakeFiles/craft_kernel.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
