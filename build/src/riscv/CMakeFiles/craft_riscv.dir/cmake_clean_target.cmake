file(REMOVE_RECURSE
  "libcraft_riscv.a"
)
