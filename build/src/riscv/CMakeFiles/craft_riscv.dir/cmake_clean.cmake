file(REMOVE_RECURSE
  "CMakeFiles/craft_riscv.dir/cpu.cpp.o"
  "CMakeFiles/craft_riscv.dir/cpu.cpp.o.d"
  "libcraft_riscv.a"
  "libcraft_riscv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/craft_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
