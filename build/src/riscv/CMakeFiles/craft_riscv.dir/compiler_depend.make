# Empty compiler generated dependencies file for craft_riscv.
# This may be replaced when dependencies are built.
